"""Graph-minor containment testing.

The paper's §VIII classification hinges on searching real topologies for
the forbidden minors of each routing model (``K5^-1`` / ``K3,3^-1`` for
destination-based routing, ``K7^-1`` / ``K4,4^-1`` for source-destination
routing, ``K4`` / ``K2,3`` for touring).  The authors used the
``minorminer`` heuristic; we build a self-contained engine:

1. planarity shortcuts (a planar host cannot contain a non-planar minor;
   a non-planar host contains a ``K5`` or ``K3,3`` minor by Wagner);
2. minor-safe reductions and block decomposition (``graphs.reductions``);
3. a randomized contraction heuristic for fast positives (the
   ``minorminer`` substitute);
4. an exact branch-and-bound over edge deletion/contraction with a
   recursion budget; exceeding the budget yields ``UNKNOWN`` — the same
   trichotomy the paper's heuristic pipeline produces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

import networkx as nx
from networkx.algorithms import isomorphism

from . import construct
from .edges import Node
from .planarity import is_planar
from .reductions import contract_edge, reduce_host, search_units


class MinorOutcome(Enum):
    """Tri-state result of a budgeted minor search."""

    YES = "yes"
    NO = "no"
    UNKNOWN = "unknown"


@dataclass
class MinorSearchStats:
    """Instrumentation for benchmarks: how hard was the search?"""

    recursion_nodes: int = 0
    heuristic_rounds: int = 0
    used_planarity_shortcut: bool = False


# ---------------------------------------------------------------------------
# Pattern graphs of the paper.
# ---------------------------------------------------------------------------


def pattern_k4() -> nx.Graph:
    """``K4`` — forbidden for touring (Lemma 3)."""
    return construct.complete_graph(4)


def pattern_k23() -> nx.Graph:
    """``K2,3`` — forbidden for touring (Lemma 4)."""
    return construct.complete_bipartite(2, 3)


def pattern_k5_minus1() -> nx.Graph:
    """``K5^-1`` — forbidden for destination-based routing (Thm 10)."""
    return construct.k_minus(5, 1)


def pattern_k33_minus1() -> nx.Graph:
    """``K3,3^-1`` — forbidden for destination-based routing (Thm 11)."""
    return construct.k_bipartite_minus(3, 3, 1)


def pattern_k7_minus1() -> nx.Graph:
    """``K7^-1`` — forbidden for source-destination routing (Thm 6)."""
    return construct.k_minus(7, 1)


def pattern_k44_minus1() -> nx.Graph:
    """``K4,4^-1`` — forbidden for source-destination routing (Thm 7)."""
    return construct.k_bipartite_minus(4, 4, 1)


# ---------------------------------------------------------------------------
# Subgraph containment (exact, used on small graphs).
# ---------------------------------------------------------------------------


def contains_subgraph(host: nx.Graph, pattern: nx.Graph) -> bool:
    """Does ``host`` contain ``pattern`` as a (not necessarily induced) subgraph?"""
    if host.number_of_nodes() < pattern.number_of_nodes():
        return False
    if host.number_of_edges() < pattern.number_of_edges():
        return False
    matcher = isomorphism.GraphMatcher(host, pattern)
    return matcher.subgraph_is_monomorphic()


# ---------------------------------------------------------------------------
# Randomized contraction heuristic (fast positives).
# ---------------------------------------------------------------------------


def _heuristic_contract(
    host: nx.Graph,
    pattern: nx.Graph,
    rng: random.Random,
    rounds: int,
    stats: MinorSearchStats,
) -> bool:
    """Randomly contract the host down to |V(pattern)| nodes and test.

    Any sequence of contractions that ends in a supergraph of the pattern
    is a witness; repeated biased restarts find witnesses quickly on hosts
    that genuinely contain the minor.
    """
    target = pattern.number_of_nodes()
    for _ in range(rounds):
        stats.heuristic_rounds += 1
        work = nx.Graph(host)
        feasible = True
        while work.number_of_nodes() > target:
            if work.number_of_edges() < pattern.number_of_edges():
                feasible = False
                break
            u, v = _pick_contraction(work, rng)
            work = contract_edge(work, u, v)
        if not feasible or work.number_of_nodes() != target:
            continue
        if contains_subgraph(work, pattern):
            return True
    return False


def _pick_contraction(work: nx.Graph, rng: random.Random) -> tuple[Node, Node]:
    # Contract around low-degree vertices: concentrates density, which is
    # what dense patterns need.
    nodes = list(work.nodes)
    sample = rng.sample(nodes, min(6, len(nodes)))
    v = min(sample, key=work.degree)
    neighbors = list(work.neighbors(v))
    u = min(rng.sample(neighbors, min(3, len(neighbors))), key=work.degree)
    return u, v


# ---------------------------------------------------------------------------
# Exact branch and bound.
# ---------------------------------------------------------------------------


class _BudgetExceeded(Exception):
    pass


#: hosts this small get a budget-free exhaustive search when the budgeted
#: pipeline is inconclusive — the branch tree is bounded by ~2^links, so
#: the limits below keep the worst case comfortably sub-second while
#: making every small-host verdict deterministic (no more UNKNOWN flakes)
EXHAUSTIVE_FALLBACK_NODES = 10
EXHAUSTIVE_FALLBACK_LINKS = 20


def _exact_search(
    host: nx.Graph,
    pattern: nx.Graph,
    budget: int | None,
    stats: MinorSearchStats,
) -> bool:
    """Exact minor test by branching on contract/delete of one link.

    ``budget=None`` disables the recursion cap (exhaustive mode, used
    only for small hosts where termination is fast).
    """
    stats.recursion_nodes += 1
    if budget is not None and stats.recursion_nodes > budget:
        raise _BudgetExceeded
    host = reduce_host(host, pattern)
    n_h, m_h = host.number_of_nodes(), host.number_of_edges()
    n_p, m_p = pattern.number_of_nodes(), pattern.number_of_edges()
    if n_h < n_p or m_h < m_p:
        return False
    if n_h == n_p:
        return contains_subgraph(host, pattern)
    if n_h <= n_p + 2 and contains_subgraph(host, pattern):
        return True
    u, v = _branch_edge(host)
    if _exact_search(contract_edge(host, u, v), pattern, budget, stats):
        return True
    deleted = nx.Graph(host)
    deleted.remove_edge(u, v)
    if not nx.is_connected(deleted):
        pieces = [deleted.subgraph(c).copy() for c in nx.connected_components(deleted)]
        return any(_exact_search(piece, pattern, budget, stats) for piece in pieces)
    return _exact_search(deleted, pattern, budget, stats)


def _branch_edge(host: nx.Graph) -> tuple[Node, Node]:
    v = min(host.nodes, key=host.degree)
    u = min(host.neighbors(v), key=host.degree)
    return u, v


# ---------------------------------------------------------------------------
# Public API.
# ---------------------------------------------------------------------------


def has_minor(
    host: nx.Graph,
    pattern: nx.Graph,
    budget: int = 20_000,
    heuristic_rounds: int = 40,
    seed: int = 0,
    stats: MinorSearchStats | None = None,
) -> MinorOutcome:
    """Budgeted test whether ``pattern`` is a minor of ``host``.

    The pattern must be connected.  Returns :class:`MinorOutcome`;
    ``UNKNOWN`` means the exact search exceeded its budget and the
    heuristic found no witness (mirroring the paper's heuristic pipeline).
    """
    if pattern.number_of_nodes() == 0:
        return MinorOutcome.YES
    if not nx.is_connected(pattern):
        raise ValueError("pattern must be connected")
    stats = stats if stats is not None else MinorSearchStats()
    if host.number_of_nodes() < pattern.number_of_nodes():
        return MinorOutcome.NO
    if host.number_of_edges() < pattern.number_of_edges():
        return MinorOutcome.NO
    # Planarity shortcut: minors of planar graphs are planar.
    if not is_planar(pattern) and is_planar(host):
        stats.used_planarity_shortcut = True
        return MinorOutcome.NO
    rng = random.Random(seed)
    pieces = search_units(host, pattern)
    if not pieces:
        return MinorOutcome.NO
    unknown = False
    for piece in pieces:
        if _heuristic_contract(piece, pattern, rng, heuristic_rounds, stats):
            return MinorOutcome.YES
        try:
            if _exact_search(piece, pattern, budget, stats):
                return MinorOutcome.YES
        except _BudgetExceeded:
            if (
                piece.number_of_nodes() <= EXHAUSTIVE_FALLBACK_NODES
                and piece.number_of_edges() <= EXHAUSTIVE_FALLBACK_LINKS
            ):
                # small host: finish the search exhaustively — the answer
                # is then exact and deterministic, never UNKNOWN
                if _exact_search(piece, pattern, None, stats):
                    return MinorOutcome.YES
            else:
                unknown = True
    return MinorOutcome.UNKNOWN if unknown else MinorOutcome.NO


def has_any_minor(
    host: nx.Graph,
    patterns: list[nx.Graph],
    budget: int = 20_000,
    heuristic_rounds: int = 40,
    seed: int = 0,
) -> MinorOutcome:
    """Does ``host`` contain *any* of the patterns as a minor?

    ``YES`` dominates; otherwise ``UNKNOWN`` if any individual search was
    inconclusive; else ``NO``.
    """
    unknown = False
    for pattern in patterns:
        outcome = has_minor(host, pattern, budget=budget, heuristic_rounds=heuristic_rounds, seed=seed)
        if outcome is MinorOutcome.YES:
            return MinorOutcome.YES
        if outcome is MinorOutcome.UNKNOWN:
            unknown = True
    return MinorOutcome.UNKNOWN if unknown else MinorOutcome.NO


def is_minor_of(graph: nx.Graph, host: nx.Graph, budget: int = 20_000) -> MinorOutcome:
    """Is ``graph`` a minor of ``host``?  (Positive-side classification.)

    Used to recognize graphs covered by the paper's possibility theorems:
    minors of ``K5`` / ``K3,3`` (Thms 8, 9) and of ``K5^-2`` / ``K3,3^-2``
    (Thms 12, 13).  The *graph* plays the pattern role here, so it must be
    connected.
    """
    return has_minor(host, graph, budget=budget)


def forbidden_minor_destination(host: nx.Graph, budget: int = 20_000, seed: int = 0) -> MinorOutcome:
    """Does ``host`` contain ``K5^-1`` or ``K3,3^-1`` as a minor?  (§V)

    Non-planar hosts contain ``K5`` or ``K3,3`` (Wagner), hence also the
    one-link-less variants, so only planar hosts need a real search.
    """
    if not is_planar(host):
        return MinorOutcome.YES
    return has_any_minor(host, [pattern_k5_minus1(), pattern_k33_minus1()], budget=budget, seed=seed)


def forbidden_minor_source_destination(
    host: nx.Graph, budget: int = 20_000, seed: int = 0
) -> MinorOutcome:
    """Does ``host`` contain ``K7^-1`` or ``K4,4^-1`` as a minor?  (§IV)

    Both patterns are non-planar, so planar hosts are immediately clean.
    """
    if is_planar(host):
        return MinorOutcome.NO
    return has_any_minor(host, [pattern_k7_minus1(), pattern_k44_minus1()], budget=budget, seed=seed)


def forbidden_minor_touring(host: nx.Graph) -> MinorOutcome:
    """Does ``host`` contain ``K4`` or ``K2,3`` as a minor?  (§VII)

    Exactly the complement of outerplanarity (Lemma 2), so no search is
    needed at all.
    """
    from .planarity import is_outerplanar

    return MinorOutcome.NO if is_outerplanar(host) else MinorOutcome.YES
