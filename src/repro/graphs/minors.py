"""Graph-minor containment testing.

The paper's §VIII classification hinges on searching real topologies for
the forbidden minors of each routing model (``K5^-1`` / ``K3,3^-1`` for
destination-based routing, ``K7^-1`` / ``K4,4^-1`` for source-destination
routing, ``K4`` / ``K2,3`` for touring).  The authors used the
``minorminer`` heuristic; we build a self-contained engine:

1. planarity shortcuts (a planar host cannot contain a non-planar minor;
   a non-planar host contains a ``K5`` or ``K3,3`` minor by Wagner);
2. minor-safe reductions and block decomposition (``graphs.reductions``);
3. a randomized contraction heuristic for fast positives (the
   ``minorminer`` substitute);
4. an exact backtracking search over branch-set embeddings with a
   budget on placements tried; exceeding the budget yields ``UNKNOWN``
   — the same trichotomy the paper's heuristic pipeline produces.

The exact layer used to be a branch-and-bound on deleting/contracting
one *host* link, but that recursion is incomplete: a model whose
pattern edge ``xy`` is realized by a single host link ``e`` can be lost
on both branches — deleting ``e`` severs the only contact between the
two branch sets, and contracting ``e`` merges them into one set that
cannot always be split back into valid images of ``x`` and ``y``
(smallest witness: the 4-cycle with a pendant vs. the triangle with a
pendant).  It survives as :func:`_contract_delete_probe`, a *sound
YES-prover* (every branch is a genuine minor of the host, so a hit is a
witness — it excels on grid-like hosts where random contraction also
struggles); the authoritative verdict comes from the branch-set
embedding search in :func:`_exact_search`, which is complete by
construction because it enumerates the models themselves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum

import networkx as nx
from networkx.algorithms import isomorphism

from . import construct
from .edges import Node
from .planarity import is_planar
from .reductions import contract_edge, reduce_host, search_units


class MinorOutcome(Enum):
    """Tri-state result of a budgeted minor search."""

    YES = "yes"
    NO = "no"
    UNKNOWN = "unknown"


@dataclass
class MinorSearchStats:
    """Instrumentation for benchmarks: how hard was the search?"""

    recursion_nodes: int = 0
    heuristic_rounds: int = 0
    used_planarity_shortcut: bool = False


# ---------------------------------------------------------------------------
# Pattern graphs of the paper.
# ---------------------------------------------------------------------------


def pattern_k4() -> nx.Graph:
    """``K4`` — forbidden for touring (Lemma 3)."""
    return construct.complete_graph(4)


def pattern_k23() -> nx.Graph:
    """``K2,3`` — forbidden for touring (Lemma 4)."""
    return construct.complete_bipartite(2, 3)


def pattern_k5_minus1() -> nx.Graph:
    """``K5^-1`` — forbidden for destination-based routing (Thm 10)."""
    return construct.k_minus(5, 1)


def pattern_k33_minus1() -> nx.Graph:
    """``K3,3^-1`` — forbidden for destination-based routing (Thm 11)."""
    return construct.k_bipartite_minus(3, 3, 1)


def pattern_k7_minus1() -> nx.Graph:
    """``K7^-1`` — forbidden for source-destination routing (Thm 6)."""
    return construct.k_minus(7, 1)


def pattern_k44_minus1() -> nx.Graph:
    """``K4,4^-1`` — forbidden for source-destination routing (Thm 7)."""
    return construct.k_bipartite_minus(4, 4, 1)


# ---------------------------------------------------------------------------
# Subgraph containment (exact, used on small graphs).
# ---------------------------------------------------------------------------


def contains_subgraph(host: nx.Graph, pattern: nx.Graph) -> bool:
    """Does ``host`` contain ``pattern`` as a (not necessarily induced) subgraph?"""
    if host.number_of_nodes() < pattern.number_of_nodes():
        return False
    if host.number_of_edges() < pattern.number_of_edges():
        return False
    matcher = isomorphism.GraphMatcher(host, pattern)
    return matcher.subgraph_is_monomorphic()


# ---------------------------------------------------------------------------
# Randomized contraction heuristic (fast positives).
# ---------------------------------------------------------------------------


def _heuristic_contract(
    host: nx.Graph,
    pattern: nx.Graph,
    rng: random.Random,
    rounds: int,
    stats: MinorSearchStats,
) -> bool:
    """Randomly contract the host down to |V(pattern)| nodes and test.

    Any sequence of contractions that ends in a supergraph of the pattern
    is a witness; repeated biased restarts find witnesses quickly on hosts
    that genuinely contain the minor.
    """
    target = pattern.number_of_nodes()
    for _ in range(rounds):
        stats.heuristic_rounds += 1
        work = nx.Graph(host)
        feasible = True
        while work.number_of_nodes() > target:
            if work.number_of_edges() < pattern.number_of_edges():
                feasible = False
                break
            u, v = _pick_contraction(work, rng)
            work = contract_edge(work, u, v)
        if not feasible or work.number_of_nodes() != target:
            continue
        if contains_subgraph(work, pattern):
            return True
    return False


def _pick_contraction(work: nx.Graph, rng: random.Random) -> tuple[Node, Node]:
    # Contract around low-degree vertices: concentrates density, which is
    # what dense patterns need.
    nodes = list(work.nodes)
    sample = rng.sample(nodes, min(6, len(nodes)))
    v = min(sample, key=work.degree)
    neighbors = list(work.neighbors(v))
    u = min(rng.sample(neighbors, min(3, len(neighbors))), key=work.degree)
    return u, v


# ---------------------------------------------------------------------------
# Exact branch and bound.
# ---------------------------------------------------------------------------


class _BudgetExceeded(Exception):
    pass


#: hosts this small get a budget-free exhaustive search when the budgeted
#: pipeline is inconclusive — the embedding tree is small there, so the
#: limits below keep the worst case comfortably sub-second while making
#: every small-host verdict deterministic (no more UNKNOWN flakes)
EXHAUSTIVE_FALLBACK_NODES = 10
EXHAUSTIVE_FALLBACK_LINKS = 20


def _contract_delete_probe(
    host: nx.Graph,
    pattern: nx.Graph,
    budget: int | None,
    stats: MinorSearchStats,
    _start: int | None = None,
) -> bool:
    """Deterministic YES-prover: branch on contract/delete of one link.

    Sound for YES (every explored graph is a minor of the host, so a
    subgraph hit is a witness) but **incomplete** — a ``False`` proves
    nothing (see the module docstring) and callers must fall through to
    :func:`_exact_search`.  Kept because it finds witnesses in sparse
    grid-like hosts far faster than branch-set enumeration does.
    """
    if _start is None:
        _start = stats.recursion_nodes
    stats.recursion_nodes += 1
    if budget is not None and stats.recursion_nodes - _start > budget:
        raise _BudgetExceeded
    host = reduce_host(host, pattern)
    n_h, m_h = host.number_of_nodes(), host.number_of_edges()
    n_p, m_p = pattern.number_of_nodes(), pattern.number_of_edges()
    if n_h < n_p or m_h < m_p:
        return False
    if n_h == n_p:
        return contains_subgraph(host, pattern)
    if n_h <= n_p + 2 and contains_subgraph(host, pattern):
        return True
    v = min(host.nodes, key=host.degree)
    u = min(host.neighbors(v), key=host.degree)
    if _contract_delete_probe(contract_edge(host, u, v), pattern, budget, stats, _start):
        return True
    deleted = nx.Graph(host)
    deleted.remove_edge(u, v)
    if not nx.is_connected(deleted):
        pieces = [deleted.subgraph(c).copy() for c in nx.connected_components(deleted)]
        return any(
            _contract_delete_probe(piece, pattern, budget, stats, _start) for piece in pieces
        )
    return _contract_delete_probe(deleted, pattern, budget, stats, _start)


def _placement_order(pattern: nx.Graph) -> list[Node]:
    """Pattern vertices ordered for backtracking: densest first, then
    always a vertex with the most already-placed neighbours (the pattern
    is connected, so every vertex after the first is anchored)."""
    nodes = sorted(pattern.nodes, key=lambda x: (-pattern.degree(x), repr(x)))
    order = [nodes[0]]
    placed = {nodes[0]}
    rest = nodes[1:]
    while rest:
        best = max(
            rest,
            key=lambda x: (
                sum(1 for y in pattern.neighbors(x) if y in placed),
                pattern.degree(x),
            ),
        )
        order.append(best)
        placed.add(best)
        rest.remove(best)
    return order


def _exact_search(
    host: nx.Graph,
    pattern: nx.Graph,
    budget: int | None,
    stats: MinorSearchStats,
) -> bool:
    """Exact minor test: backtracking over branch-set embeddings.

    Places one pattern vertex at a time; a candidate branch set is a
    connected set of still-free host vertices touching every placed
    pattern neighbour's set (enumerated once each via a canonical
    minimum-seed rule).  Complete and sound — the delete/contract host-
    link branching this replaces could lose models outright (see the
    module docstring).  ``budget`` caps the number of candidate branch
    sets tried (counted in ``stats.recursion_nodes``); ``budget=None``
    disables the cap (exhaustive mode, used for small hosts).
    """
    start = stats.recursion_nodes
    host = reduce_host(host, pattern)
    n_p = pattern.number_of_nodes()
    n_h = host.number_of_nodes()
    if n_h < n_p or host.number_of_edges() < pattern.number_of_edges():
        return False
    # near-pattern-sized hosts: the (unbudgeted) VF2 monomorphism check
    # is cheap there and settles the all-singletons case immediately
    if n_h <= n_p + 2:
        if contains_subgraph(host, pattern):
            return True
        if n_h == n_p:
            return False  # no room to contract: the subgraph check was exact
    adjacency = {v: frozenset(host.neighbors(v)) for v in host.nodes}
    node_rank = {v: i for i, v in enumerate(sorted(host.nodes, key=repr))}
    order = _placement_order(pattern)
    pattern_neighbors = {x: tuple(pattern.neighbors(x)) for x in pattern.nodes}
    placed: dict[Node, frozenset] = {}
    free = set(host.nodes)

    def candidate_sets(x: Node, max_size: int):
        """Connected branch-set candidates for pattern vertex ``x``.

        Each candidate contains its canonically smallest *seed* (the
        least anchor-contact vertex, or the least vertex outright for
        the unanchored first placement), so no set is enumerated twice.
        """
        anchors = [placed[y] for y in pattern_neighbors[x] if y in placed]
        if anchors:
            smallest = min(anchors, key=len)
            contacts = sorted(
                {v for u in smallest for v in adjacency[u] if v in free},
                key=node_rank.__getitem__,
            )
        else:
            contacts = sorted(free, key=node_rank.__getitem__)
        others = [b for b in anchors if b is not smallest] if anchors else []

        def satisfied(group: set) -> bool:
            return all(
                any(adjacency[v] & block for v in group) for block in others
            )

        def grow(group: set, extensions: list, blocked: set):
            stats.recursion_nodes += 1
            if budget is not None and stats.recursion_nodes - start > budget:
                raise _BudgetExceeded
            if satisfied(group):
                yield frozenset(group)
            if len(group) >= max_size:
                return
            for index, vertex in enumerate(extensions):
                if vertex in blocked:
                    continue
                group.add(vertex)
                fresh = [
                    w
                    for w in sorted(adjacency[vertex], key=node_rank.__getitem__)
                    if w in free and w not in group and w not in blocked
                    and w not in extensions
                ]
                yield from grow(group, extensions[index + 1 :] + fresh, blocked)
                group.remove(vertex)
                blocked = blocked | {vertex}

        for position, seed in enumerate(contacts):
            # canonical rule: earlier contacts are blocked, so this seed
            # is the least contact of every set it generates
            blocked = set(contacts[:position])
            extensions = [
                w
                for w in sorted(adjacency[seed], key=node_rank.__getitem__)
                if w in free and w not in blocked
            ]
            yield from grow({seed}, extensions, blocked)

    def place(index: int) -> bool:
        if index == len(order):
            return True
        x = order[index]
        remaining = len(order) - index - 1
        max_size = len(free) - remaining
        if max_size <= 0:
            return False
        for group in candidate_sets(x, max_size):
            placed[x] = group
            free.difference_update(group)
            if place(index + 1):
                return True
            free.update(group)
            del placed[x]
        return False

    return place(0)


# ---------------------------------------------------------------------------
# Public API.
# ---------------------------------------------------------------------------


def has_minor(
    host: nx.Graph,
    pattern: nx.Graph,
    budget: int = 20_000,
    heuristic_rounds: int = 40,
    seed: int = 0,
    stats: MinorSearchStats | None = None,
) -> MinorOutcome:
    """Budgeted test whether ``pattern`` is a minor of ``host``.

    The pattern must be connected.  Returns :class:`MinorOutcome`;
    ``UNKNOWN`` means the exact search exceeded its budget and the
    heuristic found no witness (mirroring the paper's heuristic pipeline).
    """
    if pattern.number_of_nodes() == 0:
        return MinorOutcome.YES
    if not nx.is_connected(pattern):
        raise ValueError("pattern must be connected")
    stats = stats if stats is not None else MinorSearchStats()
    if host.number_of_nodes() < pattern.number_of_nodes():
        return MinorOutcome.NO
    if host.number_of_edges() < pattern.number_of_edges():
        return MinorOutcome.NO
    # Planarity shortcut: minors of planar graphs are planar.
    if not is_planar(pattern) and is_planar(host):
        stats.used_planarity_shortcut = True
        return MinorOutcome.NO
    rng = random.Random(seed)
    pieces = search_units(host, pattern)
    if not pieces:
        return MinorOutcome.NO
    unknown = False
    for piece in pieces:
        if _heuristic_contract(piece, pattern, rng, heuristic_rounds, stats):
            return MinorOutcome.YES
        try:
            # deterministic witness probe: sound for YES, blind to NO —
            # it covers the sparse grid-like hosts the random heuristic
            # and the embedding search are both slow on
            if _contract_delete_probe(piece, pattern, budget, stats):
                return MinorOutcome.YES
        except _BudgetExceeded:
            pass
        try:
            if _exact_search(piece, pattern, budget, stats):
                return MinorOutcome.YES
        except _BudgetExceeded:
            if (
                piece.number_of_nodes() <= EXHAUSTIVE_FALLBACK_NODES
                and piece.number_of_edges() <= EXHAUSTIVE_FALLBACK_LINKS
            ):
                # small host: finish the search exhaustively — the answer
                # is then exact and deterministic, never UNKNOWN
                if _exact_search(piece, pattern, None, stats):
                    return MinorOutcome.YES
            else:
                unknown = True
    return MinorOutcome.UNKNOWN if unknown else MinorOutcome.NO


def has_any_minor(
    host: nx.Graph,
    patterns: list[nx.Graph],
    budget: int = 20_000,
    heuristic_rounds: int = 40,
    seed: int = 0,
) -> MinorOutcome:
    """Does ``host`` contain *any* of the patterns as a minor?

    ``YES`` dominates; otherwise ``UNKNOWN`` if any individual search was
    inconclusive; else ``NO``.
    """
    unknown = False
    for pattern in patterns:
        outcome = has_minor(host, pattern, budget=budget, heuristic_rounds=heuristic_rounds, seed=seed)
        if outcome is MinorOutcome.YES:
            return MinorOutcome.YES
        if outcome is MinorOutcome.UNKNOWN:
            unknown = True
    return MinorOutcome.UNKNOWN if unknown else MinorOutcome.NO


def is_minor_of(graph: nx.Graph, host: nx.Graph, budget: int = 20_000) -> MinorOutcome:
    """Is ``graph`` a minor of ``host``?  (Positive-side classification.)

    Used to recognize graphs covered by the paper's possibility theorems:
    minors of ``K5`` / ``K3,3`` (Thms 8, 9) and of ``K5^-2`` / ``K3,3^-2``
    (Thms 12, 13).  The *graph* plays the pattern role here, so it must be
    connected.
    """
    return has_minor(host, graph, budget=budget)


def forbidden_minor_destination(host: nx.Graph, budget: int = 20_000, seed: int = 0) -> MinorOutcome:
    """Does ``host`` contain ``K5^-1`` or ``K3,3^-1`` as a minor?  (§V)

    Non-planar hosts contain ``K5`` or ``K3,3`` (Wagner), hence also the
    one-link-less variants, so only planar hosts need a real search.
    """
    if not is_planar(host):
        return MinorOutcome.YES
    return has_any_minor(host, [pattern_k5_minus1(), pattern_k33_minus1()], budget=budget, seed=seed)


def forbidden_minor_source_destination(
    host: nx.Graph, budget: int = 20_000, seed: int = 0
) -> MinorOutcome:
    """Does ``host`` contain ``K7^-1`` or ``K4,4^-1`` as a minor?  (§IV)

    Both patterns are non-planar, so planar hosts are immediately clean.
    """
    if is_planar(host):
        return MinorOutcome.NO
    return has_any_minor(host, [pattern_k7_minus1(), pattern_k44_minus1()], budget=budget, seed=seed)


def forbidden_minor_touring(host: nx.Graph) -> MinorOutcome:
    """Does ``host`` contain ``K4`` or ``K2,3`` as a minor?  (§VII)

    Exactly the complement of outerplanarity (Lemma 2), so no search is
    needed at all.
    """
    from .planarity import is_outerplanar

    return MinorOutcome.NO if is_outerplanar(host) else MinorOutcome.YES
