"""Edge-disjoint Hamiltonian cycle decompositions.

Theorem 17 tours a 2k-connected complete or complete bipartite graph under
``k - 1`` failures by routing along ``k`` link-disjoint Hamiltonian cycles,
"following the results of Walecki [50] and Laskar and Auerbach [51]".
This module provides both classic constructions:

* Walecki: ``K_{2m+1}`` decomposes into ``m`` Hamiltonian cycles;
* 1-factorization pairing: ``K_{n,n}`` with even ``n`` decomposes into
  ``n/2`` Hamiltonian cycles.

Every construction is verifiable with :func:`is_hamiltonian_decomposition`.
"""

from __future__ import annotations

import networkx as nx

from .edges import Edge, Node, edge, sorted_nodes


def walecki_decomposition(n: int) -> list[list[Node]]:
    """The ``(n-1)/2`` edge-disjoint Hamiltonian cycles of ``K_n`` (odd n).

    Node labels match :func:`repro.graphs.construct.complete_graph`:
    ``0..n-1`` where ``n-1`` plays the role of Walecki's hub vertex.
    Each cycle is returned as a node list; the closing link back to the
    first node is implicit.
    """
    if n < 3 or n % 2 == 0:
        raise ValueError("Walecki decomposition needs odd n >= 3")
    m = (n - 1) // 2
    hub = n - 1
    cycles = []
    for i in range(m):
        zigzag = [i % (n - 1)]
        for step in range(1, m + 1):
            zigzag.append((i + step) % (n - 1))
            if step < m:
                zigzag.append((i - step) % (n - 1))
        cycles.append([hub] + zigzag)
    return cycles


def bipartite_hamiltonian_decomposition(n: int) -> list[list[Node]]:
    """The ``n/2`` edge-disjoint Hamiltonian cycles of ``K_{n,n}`` (even n).

    Node labels match :func:`repro.graphs.construct.complete_bipartite`:
    part A is ``0..n-1``, part B is ``n..2n-1``.  Pairs the perfect
    matchings ``M_d = {(a_i, b_{i+d})}`` and ``M_{d+1}``; their union is a
    single Hamiltonian cycle because ``gcd(1, n) = 1``.
    """
    if n < 2 or n % 2 == 1:
        raise ValueError("K_{n,n} Hamiltonian decomposition needs even n >= 2")
    cycles = []
    for d in range(0, n, 2):
        cycle: list[Node] = []
        i = 0
        for _ in range(n):
            cycle.append(i)
            cycle.append(n + (i + d) % n)
            i = (i - 1) % n
        cycles.append(cycle)
    return cycles


def cycle_edges(cycle: list[Node]) -> list[Edge]:
    """The canonical link list of a closed cycle given as a node list."""
    return [edge(u, v) for u, v in zip(cycle, cycle[1:] + cycle[:1])]


def is_hamiltonian_decomposition(graph: nx.Graph, cycles: list[list[Node]]) -> bool:
    """Do the cycles partition ``E(graph)`` into Hamiltonian cycles?"""
    seen: set[Edge] = set()
    nodes = set(graph.nodes)
    for cycle in cycles:
        if set(cycle) != nodes or len(cycle) != len(nodes):
            return False
        for e in cycle_edges(cycle):
            u, v = e
            if e in seen or not graph.has_edge(u, v):
                return False
            seen.add(e)
    return len(seen) == graph.number_of_edges()


def hamiltonian_decomposition(graph: nx.Graph) -> list[list[Node]]:
    """Decompose a supported graph into edge-disjoint Hamiltonian cycles.

    Supports ``K_n`` for odd ``n`` and balanced ``K_{n,n}`` for even ``n``
    (the two families Theorem 17 builds on), under *arbitrary* node
    labels: the integer-role constructions are mapped onto the actual
    labels (in :func:`sorted_nodes` order, per bipartition side), with
    canonical ``0..n-1`` labellings kept bit-for-bit as before.  The
    result is verified before being returned.
    """
    n = graph.number_of_nodes()
    canonical = set(graph.nodes) == set(range(n))
    if graph.number_of_edges() == n * (n - 1) // 2 and n % 2 == 1:
        cycles = walecki_decomposition(n)
        if not canonical:
            labels = sorted_nodes(graph.nodes)
            cycles = [[labels[i] for i in cycle] for cycle in cycles]
    else:
        half = n // 2
        sides = None
        if n % 2 == 0 and half % 2 == 0 and graph.number_of_edges() == half * half:
            try:
                if nx.is_bipartite(graph):
                    sides = nx.bipartite.sets(graph)
            except nx.AmbiguousSolution:  # disconnected: cannot be K_{n,n}
                sides = None
        # bipartite + balanced sides + half^2 links == complete bipartite
        if sides is not None and len(sides[0]) == half:
            left, right = sides
            cycles = bipartite_hamiltonian_decomposition(half)
            if not canonical or left != set(range(half)):
                labels = sorted_nodes(left) + sorted_nodes(right)
                cycles = [[labels[i] for i in cycle] for cycle in cycles]
        else:
            raise ValueError(
                "Hamiltonian decomposition implemented for K_n (odd n) and "
                "K_{n,n} (even n) as used by Theorem 17"
            )
    if not is_hamiltonian_decomposition(graph, cycles):  # pragma: no cover
        raise AssertionError("internal error: invalid Hamiltonian decomposition")
    return cycles
