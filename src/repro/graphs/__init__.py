"""Graph substrates: everything the paper's routing results stand on.

Canonical edges and failure sets, graph family constructors, link
connectivity, planarity/outerplanarity, combinatorial embeddings, graph
minor containment, Hamiltonian decompositions, arborescence packings, and
the synthetic Topology-Zoo suite.
"""

from .connectivity import (
    are_connected,
    component_of,
    global_edge_connectivity,
    link_disjoint_paths,
    preserves_r_connectivity,
    st_edge_connectivity,
    surviving_graph,
)
from .construct import (
    bipartition,
    complete_bipartite,
    complete_graph,
    cycle_graph,
    fan_graph,
    fat_tree,
    fig2_two_rail,
    fig6_netrail,
    grid_graph,
    hypercube,
    k_bipartite_minus,
    k_minus,
    maximal_outerplanar,
    minus_links,
    path_graph,
    petersen_graph,
    star_graph,
    theta_graph,
    torus,
    wheel_graph,
)
from .edges import (
    EMPTY_FAILURES,
    Edge,
    FailureSet,
    Node,
    edge,
    edges,
    failure_set,
    incident_failures,
    iter_subsets,
    other_endpoint,
)
from .embeddings import NotOuterplanarError, RotationSystem, outerplanar_rotation
from .hamiltonian import (
    bipartite_hamiltonian_decomposition,
    hamiltonian_decomposition,
    is_hamiltonian_decomposition,
    walecki_decomposition,
)
from .arborescences import arc_disjoint_in_arborescences, verify_arborescences
from .minors import (
    MinorOutcome,
    forbidden_minor_destination,
    forbidden_minor_source_destination,
    forbidden_minor_touring,
    has_any_minor,
    has_minor,
    is_minor_of,
)
from .planarity import density, is_outerplanar, is_planar, planarity_class
from .zoo import FAMILY_MIX, ZooTopology, generate_zoo, load_graphml_zoo, save_graphml

__all__ = [name for name in dir() if not name.startswith("_")]
