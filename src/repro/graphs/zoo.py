"""Synthetic Topology-Zoo-like suite (§VIII substitution).

The paper's case study classifies 260 operator topologies from the
Internet Topology Zoo [52] (3-754 nodes, 4-895 links).  The dataset is not
redistributable here (and there is no network access), so this module
generates a *deterministic synthetic suite* with the same structural mix
the paper reports:

* roughly one third outerplanar (tree-like access networks, rings, fans);
* slightly over half planar but not outerplanar (hub-and-ring designs,
  meshed planar cores, grids, double-hub rings);
* the remainder non-planar (densely meshed cores), only the very densest
  of which contain the ``K7^-1`` / ``K4,4^-1`` minors that make
  source-destination routing impossible.

Every generator mimics a design actually found in the Zoo (star/tree
access, ring backbones, partially meshed cores with customer trees).  The
suite is deterministic given the seed, so benchmark output is stable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import networkx as nx

from . import construct

#: family -> number of instances; calibrated so that the §VIII pipeline on
#: this suite approximates the paper's Fig. 7 percentages.
FAMILY_MIX: tuple[tuple[str, int], ...] = (
    ("tree", 44),
    ("ring", 14),
    ("max_outerplanar", 16),
    ("cactus", 13),
    ("wheel", 24),
    ("netrail_tree", 37),
    ("grid", 20),
    ("double_wheel", 20),
    ("subdivided_k33m1", 14),
    ("apollonian", 16),
    ("prism", 8),
    ("double_netrail", 3),
    ("nonplanar_sparse", 21),
    ("nonplanar_dense", 10),
)


@dataclass
class ZooTopology:
    """One synthetic operator topology."""

    name: str
    family: str
    graph: nx.Graph = field(repr=False)

    @property
    def n(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def m(self) -> int:
        return self.graph.number_of_edges()

    @property
    def density(self) -> float:
        return self.m / self.n if self.n else 0.0


def generate_zoo(seed: int = 2022) -> list[ZooTopology]:
    """The full deterministic 260-topology suite."""
    suite: list[ZooTopology] = []
    index = 0
    for family, count in FAMILY_MIX:
        builder = _BUILDERS[family]
        for instance in range(count):
            rng = random.Random(f"{seed}/{family}/{instance}")
            graph = builder(rng, instance)
            graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
            suite.append(ZooTopology(name=f"SynthZoo-{index:03d}-{family}", family=family, graph=graph))
            index += 1
    return suite


def _size(rng: random.Random, low: int, high: int, instance: int, big_every: int = 0, big: int = 0) -> int:
    if big_every and instance and instance % big_every == 0:
        return big
    return rng.randint(low, high)


def _tree(rng: random.Random, instance: int) -> nx.Graph:
    # Access networks: preferential-attachment trees (hubby, like national ISPs).
    n = _size(rng, 5, 110, instance, big_every=14, big=rng.choice([380, 754]))
    graph = nx.Graph()
    graph.add_node(0)
    for node in range(1, n):
        attach = rng.choice([rng.randrange(node), rng.randrange(node), 0])
        graph.add_edge(node, attach)
    return graph


def _ring(rng: random.Random, instance: int) -> nx.Graph:
    return construct.cycle_graph(_size(rng, 4, 42, instance))


def _max_outerplanar(rng: random.Random, instance: int) -> nx.Graph:
    return construct.maximal_outerplanar(_size(rng, 6, 48, instance), seed=rng.randrange(10**6))


def _cactus(rng: random.Random, instance: int) -> nx.Graph:
    # Chained rings sharing single nodes: SONET-style metro interconnects.
    rings = rng.randint(2, 6)
    graph = nx.Graph()
    shared = 0
    graph.add_node(shared)
    counter = 1
    for _ in range(rings):
        size = rng.randint(3, 9)
        cycle = [shared] + list(range(counter, counter + size - 1))
        counter += size - 1
        for a, b in zip(cycle, cycle[1:] + cycle[:1]):
            graph.add_edge(a, b)
        shared = rng.choice(cycle)
    return graph


def _wheel(rng: random.Random, instance: int) -> nx.Graph:
    # Hub + ring backbone, possibly with pendant customers on the rim.
    rim = _size(rng, 5, 16, instance)
    graph = construct.wheel_graph(rim)
    extra = rng.randint(rim, 3 * rim)
    next_node = rim + 1
    for _ in range(extra):
        graph.add_edge(rng.randint(1, rim), next_node)
        next_node += 1
    return graph


def _netrail_core() -> nx.Graph:
    # The exact Fig. 6 Netrail shape: C7 plus three pairwise-crossing
    # chords.  Verified: planar, not outerplanar, *no* K5^-1 / K3,3^-1
    # minor, and only a few nodes are "good" destinations — the paper's
    # canonical "sometimes" topology.  (Scaling the ring or subdividing
    # links can create K3,3^-1 minors — degree-2 pattern vertices may sit
    # on subdivision nodes — so instances grow by pendant trees only.)
    return construct.fig6_netrail()


def _netrail_tree(rng: random.Random, instance: int) -> nx.Graph:
    graph = nx.convert_node_labels_to_integers(_netrail_core(), ordering="sorted")
    next_node = graph.number_of_nodes()
    for _ in range(rng.randint(5, 30)):
        graph.add_edge(rng.randrange(next_node), next_node)
        next_node += 1
    return graph


def _double_netrail(rng: random.Random, instance: int) -> nx.Graph:
    # Two Netrail cores joined by a path: removing any single node leaves
    # one core intact, so *no* destination is good, yet neither block has
    # a forbidden minor — the paper's small "unknown" bucket.
    first = nx.convert_node_labels_to_integers(_netrail_core(), ordering="sorted")
    graph = nx.Graph(first)
    offset = graph.number_of_nodes()
    for u, v in first.edges:
        graph.add_edge(u + offset, v + offset)
    bridge = graph.number_of_nodes()
    graph.add_edge(0, bridge)
    graph.add_edge(bridge, offset)
    for _ in range(rng.randint(0, 6)):
        node = graph.number_of_nodes()
        graph.add_edge(rng.randrange(node), node)
    return graph


def _subdivided_k33m1(rng: random.Random, instance: int) -> nx.Graph:
    # A subdivided K3,3^-1 core with customer pendants: planar (K3,3 minus
    # a link is planar), destination-impossible (it *is* the forbidden
    # minor), yet removing one branch node leaves a subdivided subgraph of
    # K2,3^-1, which is outerplanar — so some destinations still admit
    # perfect resilience.  These graphs sit exactly on the paper's
    # destination-model frontier.
    core = construct.k_bipartite_minus(3, 3, 1)
    graph = nx.Graph()
    counter = core.number_of_nodes()
    for u, v in core.edges:
        length = rng.randint(1, 3)
        previous = u
        for _ in range(length - 1):
            graph.add_edge(previous, counter)
            previous = counter
            counter += 1
        graph.add_edge(previous, v)
    for _ in range(rng.randint(2, 14)):
        graph.add_edge(rng.randrange(counter), counter)
        counter += 1
    return graph


def _grid(rng: random.Random, instance: int) -> nx.Graph:
    rows = rng.randint(3, 7)
    cols = rng.randint(3, 9)
    graph = construct.grid_graph(rows, cols)
    next_node = rows * cols
    for _ in range(rng.randint(0, 6)):
        graph.add_edge(rng.randrange(rows * cols), next_node)
        next_node += 1
    return graph


def _double_wheel(rng: random.Random, instance: int) -> nx.Graph:
    # Ring + two hubs (dual-homed backbone): planar, contains K3,3^-1.
    ring = _size(rng, 5, 22, instance)
    graph = construct.cycle_graph(ring)
    inner, outer = ring, ring + 1
    for node in range(ring):
        graph.add_edge(inner, node)
        graph.add_edge(outer, node)
    next_node = ring + 2
    for _ in range(rng.randint(0, ring)):
        graph.add_edge(rng.randrange(ring), next_node)
        next_node += 1
    return graph


def _apollonian(rng: random.Random, instance: int) -> nx.Graph:
    # Stacked planar triangulations (3-trees): densely meshed planar cores.
    graph = nx.complete_graph(3)
    faces = [(0, 1, 2)]
    extra = rng.randint(2, 14)
    for node in range(3, 3 + extra):
        face = faces.pop(rng.randrange(len(faces)))
        a, b, c = face
        graph.add_edges_from([(node, a), (node, b), (node, c)])
        faces.extend([(a, b, node), (a, c, node), (b, c, node)])
    next_node = graph.number_of_nodes()
    for _ in range(rng.randint(0, 8)):
        graph.add_edge(rng.randrange(next_node), next_node)
        next_node += 1
    return graph


def _prism(rng: random.Random, instance: int) -> nx.Graph:
    # Circular ladder (two parallel rings + rungs): dual-ring backbones.
    k = rng.randint(3, 14)
    return nx.circular_ladder_graph(k)


def _nonplanar_sparse(rng: random.Random, instance: int) -> nx.Graph:
    # A K5 or K3,3 subdivision buried in an otherwise tree-like network.
    core = construct.complete_bipartite(3, 3) if rng.random() < 0.5 else construct.complete_graph(5)
    graph = nx.Graph()
    counter = core.number_of_nodes()
    mapping = {node: node for node in core.nodes}
    for u, v in core.edges:
        length = rng.randint(1, 3)
        previous = mapping[u]
        for _ in range(length - 1):
            graph.add_edge(previous, counter)
            previous = counter
            counter += 1
        graph.add_edge(previous, mapping[v])
    for _ in range(rng.randint(0, 12)):
        graph.add_edge(rng.randrange(counter), counter)
        counter += 1
    return graph


def _nonplanar_dense(rng: random.Random, instance: int) -> nx.Graph:
    # Fully meshed cores: only these can hold K7^-1 / K4,4^-1 minors.
    if instance % 3 == 2:
        core = construct.complete_graph(6)  # dense but below the K7^-1 frontier
    elif instance % 2 == 0:
        core = construct.complete_graph(rng.randint(7, 8))
    else:
        core = construct.complete_bipartite(4, rng.randint(4, 5))
    graph = nx.Graph(core)
    counter = core.number_of_nodes()
    for _ in range(rng.randint(2, 10)):
        graph.add_edge(rng.randrange(counter), counter)
        counter += 1
    return graph


def save_graphml(suite: list[ZooTopology], directory) -> int:
    """Export a suite as GraphML files (the Topology Zoo's own format).

    Returns the number of files written.  Together with
    :func:`load_graphml_zoo` this lets the §VIII pipeline run unchanged
    on the *real* Internet Topology Zoo when its GraphML files are
    available locally.
    """
    import pathlib

    path = pathlib.Path(directory)
    path.mkdir(parents=True, exist_ok=True)
    for topology in suite:
        graph = nx.Graph(topology.graph)
        graph.graph["family"] = topology.family
        nx.write_graphml(graph, path / f"{topology.name}.graphml")
    return len(suite)


def load_graphml_zoo(directory) -> list[ZooTopology]:
    """Load a directory of GraphML topologies (real Zoo or an export).

    Multi-edges and self-loops are collapsed (the paper's model is a
    simple undirected graph); node labels are relabelled to integers.
    """
    import pathlib

    suite: list[ZooTopology] = []
    for file in sorted(pathlib.Path(directory).glob("*.graphml")):
        raw = nx.read_graphml(file)
        graph = nx.Graph()
        graph.add_nodes_from(raw.nodes)
        graph.add_edges_from((u, v) for u, v in raw.edges() if u != v)
        graph = nx.convert_node_labels_to_integers(graph, ordering="sorted")
        family = raw.graph.get("family", "graphml")
        suite.append(ZooTopology(name=file.stem, family=family, graph=graph))
    return suite


_BUILDERS = {
    "tree": _tree,
    "ring": _ring,
    "max_outerplanar": _max_outerplanar,
    "cactus": _cactus,
    "wheel": _wheel,
    "netrail_tree": _netrail_tree,
    "double_netrail": _double_netrail,
    "subdivided_k33m1": _subdivided_k33m1,
    "grid": _grid,
    "double_wheel": _double_wheel,
    "apollonian": _apollonian,
    "prism": _prism,
    "nonplanar_sparse": _nonplanar_sparse,
    "nonplanar_dense": _nonplanar_dense,
}
