"""Arc-disjoint spanning in-arborescences (Edmonds packing).

The paper contrasts perfect resilience with Chiesa et al.'s *ideal
resilience* technique [40]-[42]: decompose a k-connected graph into k
arc-disjoint spanning arborescences rooted at the destination [43] and hop
between them on failures.  We implement the packing as a substrate so the
baseline router (``core.algorithms.arborescence_routing``) can be compared
against the paper's schemes.

An in-arborescence rooted at ``t`` is stored as a parent map
``{v: next hop toward t}``; its arcs are ``(v, parent[v])``.  Two
arborescences are arc-disjoint when they share no *directed* arc (they may
use the same undirected link in opposite directions).
"""

from __future__ import annotations

import random
from collections import deque

import networkx as nx

from .edges import Node, edge_sort_key
from .hamiltonian import hamiltonian_decomposition

Arc = tuple[Node, Node]
ParentMap = dict[Node, Node]


def _arc_connectivity(arcs: set[Arc], nodes: list[Node], s: Node, t: Node, stop_at: int) -> int:
    """Unit-capacity max flow s -> t over a set of directed arcs."""
    residual: dict[Node, dict[Node, int]] = {v: {} for v in nodes}
    for u, v in arcs:
        residual[u][v] = residual[u].get(v, 0) + 1
    flow = 0
    while flow < stop_at:
        parent: dict[Node, Node] = {}
        queue = deque([s])
        seen = {s}
        found = False
        while queue and not found:
            node = queue.popleft()
            for neighbor, capacity in residual[node].items():
                if capacity <= 0 or neighbor in seen:
                    continue
                parent[neighbor] = node
                if neighbor == t:
                    found = True
                    break
                seen.add(neighbor)
                queue.append(neighbor)
        if not found:
            break
        node = t
        while node != s:
            prev = parent[node]
            residual[prev][node] -= 1
            if residual[prev][node] == 0:
                del residual[prev][node]
            residual[node][prev] = residual[node].get(prev, 0) + 1
            node = prev
        flow += 1
    return flow


def verify_arborescences(graph: nx.Graph, root: Node, trees: list[ParentMap]) -> bool:
    """Are the parent maps spanning, cycle-free, arc-disjoint, and on real links?"""
    used: set[Arc] = set()
    nodes = set(graph.nodes)
    for parent in trees:
        if set(parent) != nodes - {root}:
            return False
        for child, ancestor in parent.items():
            if not graph.has_edge(child, ancestor):
                return False
            arc = (child, ancestor)
            if arc in used:
                return False
            used.add(arc)
        for start in parent:
            node = start
            hops = 0
            while node != root:
                node = parent[node]
                hops += 1
                if hops > len(nodes):
                    return False
    return True


def _complete_graph_packing(graph: nx.Graph, root: Node) -> list[ParentMap]:
    """n-1 arc-disjoint in-arborescences of K_n (odd n) via Walecki cycles.

    Each Hamiltonian cycle yields two arc-disjoint spanning in-paths to the
    root (the two traversal directions), giving ``2 * (n-1)/2 = n - 1``
    arborescences in total.
    """
    cycles = hamiltonian_decomposition(graph)
    trees: list[ParentMap] = []
    for cycle in cycles:
        anchor = cycle.index(root)
        ordered = cycle[anchor:] + cycle[:anchor]
        forward: ParentMap = {}
        backward: ParentMap = {}
        for position in range(1, len(ordered)):
            backward[ordered[position]] = ordered[position - 1]
            forward[ordered[position - 1]] = ordered[position]
        del forward[root]
        # ``forward`` currently maps each node to its successor; the last
        # node must point back to the root to close the in-path.
        forward[ordered[-1]] = root
        trees.append(forward)
        trees.append(backward)
    return trees


def _backtracking_packing(
    graph: nx.Graph, root: Node, k: int, rng: random.Random, budget: int = 200_000
) -> list[ParentMap] | None:
    """Backtracking packing with an exact connectivity prune.

    Grows one in-arborescence at a time.  Before committing an arc
    ``(u -> v)`` the prune verifies the *necessary* condition that in the
    unused arcs every node ``w`` still has enough arc-disjoint paths to the
    root: the number of trees yet to be built, plus one more if ``w`` is
    not yet attached to the current tree (Menger + Edmonds).  Because the
    condition is necessary, pruned branches are always dead; backtracking
    makes the search complete within the budget.
    """
    nodes = list(graph.nodes)
    available: set[Arc] = set()
    for u, v in graph.edges:
        available.add((u, v))
        available.add((v, u))
    steps = [0]

    def feasible(arcs: set[Arc], attached: set[Node], remaining_trees: int) -> bool:
        # (a) every node still needs one arc-disjoint path to the root per
        #     *future* tree (their paths live entirely in unused arcs);
        if remaining_trees > 0:
            for w in nodes:
                if w == root:
                    continue
                if _arc_connectivity(arcs, nodes, w, root, stop_at=remaining_trees) < remaining_trees:
                    return False
        # (b) the current tree must remain completable: every unattached
        #     node must reach the attached set via unused arcs (its path
        #     then continues to the root over already-committed tree arcs).
        reach = set(attached)
        frontier = list(attached)
        into: dict[Node, list[Node]] = {}
        for u, v in arcs:
            into.setdefault(v, []).append(u)
        while frontier:
            node = frontier.pop()
            for previous in into.get(node, ()):
                if previous not in reach:
                    reach.add(previous)
                    frontier.append(previous)
        return len(reach) == len(nodes)

    def build(index: int, avail: set[Arc], done: list[ParentMap]) -> list[ParentMap] | None:
        if index == k:
            return done

        def grow(parent: ParentMap, attached: set[Node], arcs: set[Arc]) -> list[ParentMap] | None:
            steps[0] += 1
            if steps[0] > budget:
                return None
            if len(attached) == len(nodes):
                return build(index + 1, arcs, done + [dict(parent)])
            # ``arcs`` is a set: sort before the seeded shuffle, or its
            # hash-dependent iteration order leaks PYTHONHASHSEED into
            # the packing (and every metric downstream of it)
            candidates = sorted(
                ((u, v) for (u, v) in arcs if v in attached and u not in attached),
                key=edge_sort_key,
            )
            rng.shuffle(candidates)
            for u, v in candidates:
                trial = arcs - {(u, v)}
                if not feasible(trial, attached | {u}, k - index - 1):
                    continue
                parent[u] = v
                result = grow(parent, attached | {u}, trial)
                if result is not None:
                    return result
                del parent[u]
            return None

        return grow({}, {root}, avail)

    return build(0, available, [])


def arc_disjoint_in_arborescences(
    graph: nx.Graph, root: Node, k: int | None = None, seed: int = 0, attempts: int = 8
) -> list[ParentMap]:
    """``k`` arc-disjoint spanning in-arborescences rooted at ``root``.

    ``k`` defaults to the edge connectivity of the graph (the maximum
    possible by Edmonds' theorem on the bidirected graph).  Uses the fast
    Walecki-based construction on odd complete graphs and the greedy
    oracle-guided packing elsewhere.  The result is always verified.
    """
    from .connectivity import global_edge_connectivity

    if k is None:
        k = global_edge_connectivity(graph)
    if k < 1:
        raise ValueError("graph must be connected to pack arborescences")
    n = graph.number_of_nodes()
    if k == n - 1 and n % 2 == 1 and graph.number_of_edges() == n * (n - 1) // 2:
        trees = _complete_graph_packing(graph, root)
    else:
        trees = None
        for attempt in range(attempts):
            rng = random.Random(seed + attempt)
            trees = _backtracking_packing(graph, root, k, rng)
            if trees is not None:
                break
        if trees is None:
            raise RuntimeError(f"could not pack {k} arborescences rooted at {root!r}")
    if not verify_arborescences(graph, root, trees):  # pragma: no cover
        raise AssertionError("internal error: invalid arborescence packing")
    return trees
