"""Planarity and outerplanarity tests.

§VIII classifies Topology Zoo instances by outerplanarity (touring is
possible iff the graph is outerplanar, Cor 6) and planarity (non-planar
graphs contain a ``K5`` or ``K3,3`` minor by Wagner's theorem and hence are
impossible for destination-based routing).  The paper used SageMath; we
re-implement the checks on top of an LR-planarity test plus the classic
apex characterization of outerplanarity.
"""

from __future__ import annotations

import networkx as nx

_APEX = ("__planarity_apex__",)


def is_planar(graph: nx.Graph) -> bool:
    """Planarity via the left-right algorithm, with the Euler quick filter.

    A simple graph with ``n >= 3`` nodes and more than ``3n - 6`` links
    cannot be planar; the filter avoids running the full test on dense
    inputs.
    """
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    if n >= 3 and m > 3 * n - 6:
        return False
    return nx.check_planarity(graph, counterexample=False)[0]


def is_outerplanar(graph: nx.Graph) -> bool:
    """Outerplanarity via the apex augmentation.

    ``G`` is outerplanar iff ``G`` plus a universal vertex is planar
    (equivalently: no ``K4`` or ``K2,3`` minor, Lemma 2 / Chartrand &
    Harary).  Includes the Euler-style quick filter ``m <= 2n - 3``.
    Disconnected graphs are outerplanar iff every component is.
    """
    n = graph.number_of_nodes()
    m = graph.number_of_edges()
    if n >= 2 and m > 2 * n - 3:
        return False
    for component in nx.connected_components(graph):
        if not _component_outerplanar(graph.subgraph(component)):
            return False
    return True


def _component_outerplanar(graph: nx.Graph) -> bool:
    if len(graph) <= 3:
        return True
    augmented = nx.Graph(graph)
    augmented.add_node(_APEX)
    for node in graph.nodes:
        augmented.add_edge(_APEX, node)
    return nx.check_planarity(augmented, counterexample=False)[0]


def density(graph: nx.Graph) -> float:
    """The paper's Fig. 8 density measure ``|E| / |V|``."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0.0
    return graph.number_of_edges() / n


def planarity_class(graph: nx.Graph) -> str:
    """One of ``"outerplanar"``, ``"planar"``, ``"non-planar"`` (Fig 7 rows)."""
    if is_outerplanar(graph):
        return "outerplanar"
    if is_planar(graph):
        return "planar"
    return "non-planar"
