"""Link connectivity primitives.

The paper's r-tolerance promise (§II, Definition 1) is phrased in terms of
*link* connectivity: ``s`` and ``t`` are r-connected if there are ``r``
pairwise link-disjoint paths between them.  This module implements
unit-capacity max-flow (BFS augmentation, i.e. Edmonds–Karp specialized to
0/1 capacities) from scratch so the library does not depend on networkx
flow internals; tests cross-check against networkx.
"""

from __future__ import annotations

from collections import deque

import networkx as nx

from .edges import FailureSet, Node, edge


def surviving_graph(graph: nx.Graph, failures: FailureSet) -> nx.Graph:
    """``G \\ F``: the graph with the failed links removed."""
    out = graph.copy()
    for u, v in failures:
        if out.has_edge(u, v):
            out.remove_edge(u, v)
    return out


def are_connected(graph: nx.Graph, s: Node, t: Node, failures: FailureSet = frozenset()) -> bool:
    """Is ``t`` reachable from ``s`` in ``G \\ F``?  (BFS, no copying.)"""
    if s == t:
        return True
    seen = {s}
    queue = deque([s])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor in seen or edge(node, neighbor) in failures:
                continue
            if neighbor == t:
                return True
            seen.add(neighbor)
            queue.append(neighbor)
    return False


def component_of(graph: nx.Graph, start: Node, failures: FailureSet = frozenset()) -> frozenset[Node]:
    """The node set of ``start``'s connected component in ``G \\ F``."""
    seen = {start}
    queue = deque([start])
    while queue:
        node = queue.popleft()
        for neighbor in graph.neighbors(node):
            if neighbor in seen or edge(node, neighbor) in failures:
                continue
            seen.add(neighbor)
            queue.append(neighbor)
    return frozenset(seen)


def st_edge_connectivity(
    graph: nx.Graph,
    s: Node,
    t: Node,
    failures: FailureSet = frozenset(),
    stop_at: int | None = None,
) -> int:
    """λ(s, t) in ``G \\ F``: the number of link-disjoint s–t paths.

    Implemented as unit-capacity max flow on the bidirected graph.  If
    ``stop_at`` is given, stops as soon as that many augmenting paths were
    found (enough to decide the r-tolerance promise cheaply).
    """
    if s == t:
        raise ValueError("s and t must differ")
    residual: dict[Node, dict[Node, int]] = {v: {} for v in graph.nodes}
    for u, v in graph.edges:
        if edge(u, v) in failures:
            continue
        residual[u][v] = 1
        residual[v][u] = 1
    flow = 0
    while stop_at is None or flow < stop_at:
        parent = _bfs_augmenting_path(residual, s, t)
        if parent is None:
            break
        node = t
        while node != s:
            prev = parent[node]
            residual[prev][node] -= 1
            if residual[prev][node] == 0:
                del residual[prev][node]
            residual[node][prev] = residual[node].get(prev, 0) + 1
            node = prev
        flow += 1
    return flow


def _bfs_augmenting_path(
    residual: dict[Node, dict[Node, int]], s: Node, t: Node
) -> dict[Node, Node] | None:
    parent: dict[Node, Node] = {}
    queue = deque([s])
    seen = {s}
    while queue:
        node = queue.popleft()
        for neighbor, capacity in residual[node].items():
            if capacity <= 0 or neighbor in seen:
                continue
            parent[neighbor] = node
            if neighbor == t:
                return parent
            seen.add(neighbor)
            queue.append(neighbor)
    return None


def link_disjoint_paths(
    graph: nx.Graph, s: Node, t: Node, failures: FailureSet = frozenset()
) -> list[list[Node]]:
    """A maximum collection of link-disjoint s–t paths in ``G \\ F``.

    Runs max flow, then decomposes the flow into paths.
    """
    if s == t:
        raise ValueError("s and t must differ")
    residual: dict[Node, dict[Node, int]] = {v: {} for v in graph.nodes}
    for u, v in graph.edges:
        if edge(u, v) in failures:
            continue
        residual[u][v] = 1
        residual[v][u] = 1
    used_arcs: set[tuple[Node, Node]] = set()
    while True:
        parent = _bfs_augmenting_path(residual, s, t)
        if parent is None:
            break
        node = t
        while node != s:
            prev = parent[node]
            residual[prev][node] -= 1
            if residual[prev][node] == 0:
                del residual[prev][node]
            residual[node][prev] = residual[node].get(prev, 0) + 1
            if (node, prev) in used_arcs:
                used_arcs.remove((node, prev))
            else:
                used_arcs.add((prev, node))
            node = prev
    return _decompose_paths(used_arcs, s, t)


def _decompose_paths(arcs: set[tuple[Node, Node]], s: Node, t: Node) -> list[list[Node]]:
    outgoing: dict[Node, list[Node]] = {}
    for u, v in arcs:
        outgoing.setdefault(u, []).append(v)
    paths = []
    while outgoing.get(s):
        path = [s]
        node = s
        while node != t:
            nxt = outgoing[node].pop()
            path.append(nxt)
            node = nxt
        paths.append(path)
    return paths


def global_edge_connectivity(graph: nx.Graph) -> int:
    """λ(G): min over ``t`` of λ(s, t) for a fixed ``s`` (standard trick)."""
    nodes = list(graph.nodes)
    if len(nodes) < 2:
        return 0
    if not nx.is_connected(graph):
        return 0
    s = nodes[0]
    return min(st_edge_connectivity(graph, s, t) for t in nodes[1:])


def preserves_r_connectivity(
    graph: nx.Graph, s: Node, t: Node, failures: FailureSet, r: int
) -> bool:
    """Does the r-tolerance promise hold: λ(s, t) >= r in ``G \\ F``?"""
    return st_edge_connectivity(graph, s, t, failures, stop_at=r) >= r
