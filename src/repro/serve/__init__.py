"""``repro.serve`` — the persistent resilience-query service.

A stdlib-only service layer over the experiment API: a warm
:class:`~repro.experiments.session.ExperimentSession` behind an asyncio
TCP server speaking a length-prefixed JSON protocol (``protocol``),
with request coalescing into batched sweeps (``service`` /
``server``), a disk-backed :class:`~repro.experiments.results.
ResultStore` answer cache, per-request deadlines, and a Lazy-Pirate
retrying client (``client``).  ``repro serve`` / ``repro query`` are
the CLI front ends.
"""

from .client import QueryClient, RemoteError, ServeError, ServeTimeout
from .protocol import (
    MAX_FRAME,
    OPS,
    PROTOCOL_VERSION,
    ProtocolError,
    Request,
    error_response,
    ok_response,
    parse_request,
    parse_response,
)
from .server import ResilienceServer, serve
from .service import QueryService

__all__ = [
    "MAX_FRAME",
    "OPS",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "QueryClient",
    "QueryService",
    "RemoteError",
    "Request",
    "ResilienceServer",
    "ServeError",
    "ServeTimeout",
    "error_response",
    "ok_response",
    "parse_request",
    "parse_response",
    "serve",
]
