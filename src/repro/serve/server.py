"""The asyncio TCP front end of the resilience-query service.

One :class:`ResilienceServer` owns:

* a TCP listener speaking the length-prefixed protocol (one frame in,
  one frame out, pipelining allowed per connection);
* a single compute queue + worker: compute ops (``verdict`` / ``load``
  / ``grid``) are enqueued and the worker drains *everything pending*
  into one :meth:`~repro.serve.service.QueryService.run_batch` call —
  while a sweep runs in the (single-threaded) executor, newly arriving
  queries pile up and get coalesced into the next batch.  This is the
  request-batching seam: under concurrent load, identical and
  overlapping queries share one sweep.  Control ops (``ping`` /
  ``stats`` / ``shutdown``) are answered inline on the event loop, so
  the server stays responsive while the engine is busy;
* an optional plain-HTTP sidecar exposing
  ``MetricsRegistry.render_prometheus()`` on ``GET /metrics`` (plus
  ``/healthz``), the same registry the engine's walk counters and the
  session's cache counters already feed;
* graceful shutdown on SIGTERM/SIGINT or a ``shutdown`` envelope:
  stop accepting, let the in-flight batch finish, close the executor,
  exit cleanly (the store is only ever touched through atomic merges,
  so a kill at any point leaves it intact).

Per-request telemetry goes through the same ``Telemetry`` install seam
the CLI uses: install one with :func:`repro.obs.installed` around
:meth:`ResilienceServer.serve_forever` and every request gets an
``obs.span("serve_request")`` plus request/latency/queue metrics.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import time

from repro import obs as _obs

from .protocol import (
    ProtocolError,
    Request,
    error_response,
    ok_response,
    parse_request,
    read_frame,
    write_frame,
)
from .service import QueryService

#: ops answered inline on the event loop (never queued behind a sweep)
CONTROL_OPS = frozenset({"ping", "stats", "shutdown"})


def _count(name: str, value: float = 1.0, help: str = "", **labels) -> None:
    telemetry = _obs.active()
    if telemetry is not None:
        telemetry.count(name, value, help=help, **labels)


class ResilienceServer:
    """One warm service behind a TCP socket (see module docstring)."""

    def __init__(
        self,
        service: QueryService | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_port: int | None = None,
    ):
        self.service = service if service is not None else QueryService()
        self.host = host
        self.port = port
        self.metrics_port = metrics_port
        self.started = time.monotonic()
        self.requests_handled = 0
        self._queue: asyncio.Queue = asyncio.Queue()
        self._stopping = asyncio.Event()
        self._server: asyncio.AbstractServer | None = None
        self._metrics_server: asyncio.AbstractServer | None = None
        self._executor = concurrent.futures.ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-sweep"
        )

    # -- lifecycle ---------------------------------------------------------

    @property
    def bound_port(self) -> int:
        """The port actually bound (resolves ``port=0`` ephemeral binds)."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[1]

    @property
    def bound_metrics_port(self) -> int | None:
        if self._metrics_server is None:
            return None
        return self._metrics_server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(self._handle_connection, self.host, self.port)
        if self.metrics_port is not None:
            self._metrics_server = await asyncio.start_server(
                self._handle_metrics, self.host, self.metrics_port
            )

    async def serve_forever(self) -> None:
        """Run until :meth:`request_stop` (signal, shutdown op, or test)."""
        if self._server is None:
            await self.start()
        worker = asyncio.ensure_future(self._worker())
        try:
            await self._stopping.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            if self._metrics_server is not None:
                self._metrics_server.close()
                await self._metrics_server.wait_closed()
            await self._drain_queue()
            worker.cancel()
            try:
                await worker
            except asyncio.CancelledError:
                pass
            self._executor.shutdown(wait=True)

    def request_stop(self) -> None:
        self._stopping.set()

    async def _drain_queue(self) -> None:
        """Fail queued-but-unstarted requests cleanly during shutdown."""
        while not self._queue.empty():
            request, future = self._queue.get_nowait()
            if not future.done():
                future.set_result(
                    error_response(request.id, "ServerStopping", "server is shutting down")
                )

    # -- the compute worker ------------------------------------------------

    async def _worker(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            first = await self._queue.get()
            batch = [first]
            while not self._queue.empty():
                batch.append(self._queue.get_nowait())
            requests = [request for request, _ in batch]
            _count(
                "repro_serve_queue_batch_size",
                len(batch),
                help="requests drained per worker wakeup",
            )
            try:
                responses = await loop.run_in_executor(
                    self._executor, self.service.run_batch, requests
                )
            except Exception as error:  # noqa: BLE001 - a worker crash must not hang clients
                responses = [
                    error_response(request.id, type(error).__name__, str(error))
                    for request in requests
                ]
            for (request, future), response in zip(batch, responses):
                if not future.done():
                    future.set_result(response)

    # -- per-connection protocol loop --------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    payload = await read_frame(reader)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    return  # client went away between frames
                except ProtocolError as error:
                    write_frame(writer, error_response("?", "ProtocolError", str(error)))
                    await writer.drain()
                    return  # framing is broken; the stream is unrecoverable
                try:
                    request = parse_request(payload)
                except ProtocolError as error:
                    write_frame(
                        writer,
                        error_response(
                            str(payload.get("id", "?")), "ProtocolError", str(error)
                        ),
                    )
                    await writer.drain()
                    continue  # envelope-level error: the stream survives
                response = await self._dispatch(request)
                write_frame(writer, response)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass  # mid-reply disconnect: the Lazy-Pirate client will retry
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    async def _dispatch(self, request: Request) -> dict:
        # per-request obs.span() tracing happens inside run_batch on the
        # compute thread (the TraceWriter's span stack is sequential);
        # here on the event loop we only touch metrics counters
        start = time.perf_counter()
        telemetry = _obs.active()
        if request.op in CONTROL_OPS:
            response = self._control(request)
        else:
            future: asyncio.Future = asyncio.get_event_loop().create_future()
            self._queue.put_nowait((request, future))
            _count(
                "repro_serve_queue_depth_enqueued_total",
                help="compute requests enqueued to the sweep worker",
            )
            response = await future
        self.requests_handled += 1
        status = "ok" if response.get("ok") else "error"
        _count(
            "repro_serve_requests_total",
            help="requests handled, by op and status",
            op=request.op,
            status=status,
        )
        if response.get("cached"):
            _count(
                "repro_serve_cached_responses_total",
                help="responses served from the answer cache",
                op=request.op,
            )
        if telemetry is not None:
            telemetry.observe(
                "repro_serve_request_seconds",
                time.perf_counter() - start,
                help="request latency by op",
                op=request.op,
            )
        return response

    def _control(self, request: Request) -> dict:
        if request.op == "ping":
            return ok_response(request.id, {"pong": True, "uptime_seconds": self.uptime()})
        if request.op == "stats":
            return ok_response(request.id, self.stats())
        # shutdown: acknowledge first, stop after the reply is written
        self.request_stop()
        return ok_response(request.id, {"stopping": True})

    def uptime(self) -> float:
        return time.monotonic() - self.started

    def stats(self) -> dict:
        stats = self.service.stats()
        stats.update(
            {
                "requests_handled": self.requests_handled,
                "queue_depth": self._queue.qsize(),
                "uptime_seconds": self.uptime(),
            }
        )
        return stats

    # -- /metrics sidecar --------------------------------------------------

    async def _handle_metrics(self, reader, writer) -> None:
        """A deliberately tiny HTTP/1.0 responder for scrapes."""
        try:
            request_line = await reader.readline()
            while True:  # drain headers until the blank line
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.decode("latin-1", "replace").split()
            path = parts[1] if len(parts) > 1 else "/"
            if path.startswith("/metrics"):
                telemetry = _obs.active()
                if telemetry is not None and telemetry.registry is not None:
                    body = telemetry.registry.render_prometheus()
                    status = "200 OK"
                else:
                    body = "# no metrics registry installed\n"
                    status = "200 OK"
            elif path.startswith("/healthz"):
                body = "ok\n"
                status = "200 OK"
            else:
                body = "not found\n"
                status = "404 Not Found"
            payload = body.encode("utf-8")
            writer.write(
                (
                    f"HTTP/1.0 {status}\r\n"
                    "Content-Type: text/plain; version=0.0.4; charset=utf-8\r\n"
                    f"Content-Length: {len(payload)}\r\n"
                    "Connection: close\r\n\r\n"
                ).encode("latin-1")
                + payload
            )
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass


def serve(
    service: QueryService | None = None,
    host: str = "127.0.0.1",
    port: int = 0,
    metrics_port: int | None = None,
    ready=None,
) -> int:
    """Blocking entry point: run a server until SIGTERM/SIGINT/shutdown.

    ``ready`` (if given) is called with the server once it is bound —
    the CLI uses it to print the actual ports; tests use it to learn
    ephemeral binds.  Returns 0 on graceful shutdown.
    """
    import signal

    async def _run() -> None:
        server = ResilienceServer(
            service=service, host=host, port=port, metrics_port=metrics_port
        )
        await server.start()
        loop = asyncio.get_event_loop()
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(signum, server.request_stop)
            except (NotImplementedError, RuntimeError):  # pragma: no cover - non-unix
                pass
        if ready is not None:
            ready(server)
        await server.serve_forever()

    asyncio.run(_run())
    return 0
