"""The query engine behind ``repro serve`` (transport-independent).

:class:`QueryService` answers the protocol's compute ops — ``verdict``,
``load``, ``grid`` — against one long-lived, warm
:class:`~repro.experiments.session.ExperimentSession`:

* **Warm caches.**  Topologies are resolved once per name and kept (a
  stable graph identity is what makes the session's fingerprint-keyed
  ``EngineState`` / ``TrafficEngine`` caches hit), built forwarding
  patterns and their decision tables are cached per (topology, scheme,
  destination), and every evaluated failure mask's outcome is memoized
  — a mask asked twice is never walked twice.
* **Answer cache.**  When constructed with a disk-backed
  :class:`~repro.experiments.results.ResultStore`, every computed
  answer is merged in as a typed
  :class:`~repro.experiments.results.ExperimentRecord` and every
  request first consults the store's O(1) identity index — a store
  pre-populated by an offline ``run_grid`` serves those answers without
  recomputation.  Partial (deadline-cut) answers are never cached.
* **Identical answers.**  The compute paths are the very seams
  ``run_grid`` and the checkers use (``sweep_resilience`` /
  ``TrafficEngine.load_sweep`` on session-owned state), so service
  answers are byte-identical to the offline surfaces — the differential
  tests pin this.
* **Batching.**  :meth:`run_batch` answers a group of concurrent
  requests in one go: load queries for the same (topology, scheme,
  matrix) are unioned into a *single* ``load_sweep`` call and sliced
  per request (per-mask reports are batch-composition independent);
  verdict queries for the same (topology, scheme, destination) share
  one pattern, one decision table and the mask-outcome memo, so each
  distinct mask across the whole group is walked once.

Every envelope may carry ``budget_seconds``; it is threaded as a
:class:`~repro.runtime.deadline.Deadline` into the sweeps, and a cut
sweep comes back as a best-effort answer flagged ``partial``.
"""

from __future__ import annotations

import hashlib
import json
import time
from collections import OrderedDict

from repro import obs as _obs

from ..core.engine.memo import MemoizedPattern, _route_covers, route_indexed
from ..core.engine.sweep import ScenarioGrid, sweep_resilience
from ..core.model import DestinationAlgorithm
from ..core.resilience import EXHAUSTIVE_LINK_LIMIT, Counterexample, Verdict
from ..experiments.registry import SchemeNotApplicable, scheme as scheme_by_name
from ..experiments.results import ExperimentRecord, ResultStore
from ..experiments.runner import METRICS, run_grid
from ..experiments.session import ExperimentSession
from ..failures import estimate_resilience, model_from_params
from ..failures.models import FailureModel
from ..graphs.connectivity import component_of
from ..graphs.edges import sorted_nodes
from ..runtime.deadline import Deadline
from .protocol import (
    Request,
    error_response,
    failure_set_to_json,
    failure_sets_from_json,
    failure_sets_to_json,
    node_from_json,
    node_to_json,
    ok_response,
)

#: resolved topologies kept warm, per registry name (FIFO)
GRAPH_CACHE_LIMIT = 32
#: (topology, scheme, destination) pattern/decision-table entries kept warm
PATTERN_CACHE_LIMIT = 128
#: memoized per-mask outcomes kept per pattern entry
MASK_MEMO_LIMIT = 65536


class QueryError(ValueError):
    """A request whose params cannot be served (bad names, bad shapes)."""


def _require(params: dict, name: str) -> object:
    value = params.get(name)
    if value is None:
        raise QueryError(f"missing required param {name!r}")
    return value


def _failure_model(params: dict) -> FailureModel:
    """Resolve the request's failure model via the shared spec grammar.

    ``params["model"]`` (a ``"iid:p=0.01,samples=500,seed=0"`` spec
    string) or the legacy ``sizes``/``samples``/``seed`` keys — one
    parser, :func:`repro.failures.model_from_params`, so the service
    cannot drift from the CLI or ``run_grid``.
    """
    try:
        return model_from_params(params)
    except ValueError as error:
        raise QueryError(str(error)) from None


def _explicit_label(masks, destination) -> str:
    """Deterministic failure-model label for an explicit mask list.

    The digest covers the canonical JSON of the masks (and the
    destination), so the same query from any process maps to the same
    answer-cache identity.
    """
    canonical = json.dumps(
        {"masks": failure_sets_to_json(masks), "destination": node_to_json(destination)},
        sort_keys=True,
        separators=(",", ":"),
    )
    digest = hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]
    return f"explicit(n={len(masks)},sha={digest})"


def _verdict_to_json(verdict: Verdict) -> dict:
    return {
        "resilient": bool(verdict.resilient),
        "scenarios_checked": verdict.scenarios_checked,
        "exhaustive": bool(verdict.exhaustive),
        "counterexample": str(verdict.counterexample) if verdict.counterexample else None,
    }


def serialize_report(report, failures) -> dict:
    """Canonical JSON form of one :class:`~repro.traffic.load.LoadReport`.

    Lossless on the accounting fields and the integer per-link loads;
    shared by the service and the differential tests, so "byte-identical
    to offline ``load_sweep``" is checked against one serializer.
    """
    return {
        "failures": failure_set_to_json(failures),
        "loads": [
            [node_to_json(u), node_to_json(v), load]
            for (u, v), load in sorted(report.loads.items(), key=lambda item: repr(item[0]))
        ],
        "demands": report.demands,
        "total_volume": report.total_volume,
        "delivered_volume": report.delivered_volume,
        "dropped_volume": report.dropped_volume,
        "looped_volume": report.looped_volume,
        "disconnected_volume": report.disconnected_volume,
        "delivered_hops": report.delivered_hops,
        "stretch_volume": report.stretch_volume,
        "max_load": report.max_load,
        "p99_load": report.p99_load,
        "delivered_fraction": report.delivered_fraction,
        "mean_stretch": report.mean_stretch,
    }


class _PatternEntry:
    """One warm (pattern, decision table, mask-outcome memo) triple."""

    __slots__ = ("pattern", "memo", "outcomes")

    def __init__(self, pattern, memo):
        self.pattern = pattern
        self.memo = memo
        #: mask -> (scenarios checked in that mask, Counterexample | None)
        self.outcomes: OrderedDict = OrderedDict()


class QueryService:
    """Evaluates protocol requests against one warm session (see module doc)."""

    def __init__(
        self,
        session: ExperimentSession | None = None,
        store: ResultStore | None = None,
    ):
        self.session = session if session is not None else ExperimentSession()
        self.store = store
        self.started = time.monotonic()
        self.stats_counters = {
            "store_hits": 0,
            "store_misses": 0,
            "mask_memo_hits": 0,
            "mask_memo_misses": 0,
            "batches": 0,
            "batched_requests": 0,
        }
        self._graphs: OrderedDict[str, object] = OrderedDict()
        self._patterns: OrderedDict[tuple, _PatternEntry] = OrderedDict()

    # -- warm resolution ---------------------------------------------------

    def graph(self, topology: str):
        """The topology's graph, resolved once and kept (stable identity)."""
        cached = self._graphs.get(topology)
        if cached is not None:
            self._graphs.move_to_end(topology)
            return cached
        from ..experiments.registry import resolve_topology

        try:
            graph = resolve_topology(topology)
        except KeyError as error:
            raise QueryError(str(error).strip('"')) from None
        while len(self._graphs) >= GRAPH_CACHE_LIMIT:
            self._graphs.popitem(last=False)
        self._graphs[topology] = graph
        return graph

    def _scheme(self, name: str):
        try:
            return scheme_by_name(name)
        except KeyError as error:
            raise QueryError(str(error).strip('"')) from None

    def _pattern_entry(self, topology: str, spec, graph, destination) -> _PatternEntry:
        key = (topology, spec.name, destination)
        entry = self._patterns.get(key)
        if entry is not None:
            self._patterns.move_to_end(key)
            return entry
        pattern = spec.instantiate().build(graph, destination)
        state = self.session.state(graph)
        entry = _PatternEntry(pattern, MemoizedPattern(state.network, pattern))
        while len(self._patterns) >= PATTERN_CACHE_LIMIT:
            self._patterns.popitem(last=False)
        self._patterns[key] = entry
        return entry

    # -- the batched mask walk --------------------------------------------

    def _mask_outcome(self, state, entry: _PatternEntry, destination, failures):
        """(scenarios checked, counterexample | None) for ONE failure mask.

        Replicates the per-mask block of the engine's
        ``_sweep_pattern_resilience`` exactly — same component order,
        same shared delivered-state early exit, same naive fallback for
        masks naming links outside the graph — so folding per-mask
        outcomes reproduces the sweep verdict bit for bit (pinned by a
        differential test).  Outcomes are memoized per pattern entry:
        this is the coalescing seam that lets concurrent queries share
        walks.
        """
        cached = entry.outcomes.get(failures)
        if cached is not None:
            self.stats_counters["mask_memo_hits"] += 1
            return cached
        self.stats_counters["mask_memo_misses"] += 1
        network = state.network
        index = network.index
        dest_idx = index.get(destination)
        fmask = network.mask_of(failures) if dest_idx is not None else None
        checked = 0
        outcome = None
        if fmask is None:
            from ..core.simulator import route as naive_route

            component = sorted_nodes(component_of(state.graph, destination, failures))
            naive = state.naive_network
            for source in component:
                if source == destination:
                    continue
                checked += 1
                result = naive_route(naive, entry.pattern, source, destination, failures)
                if not result.delivered:
                    outcome = Counterexample(source, destination, failures, result)
                    break
        else:
            if network.m <= EXHAUSTIVE_LINK_LIMIT:
                component = state.tracker.component_sorted(fmask, dest_idx)
            else:
                component = sorted_nodes(
                    network.labels[i] for i in network.component_of_indices(fmask, dest_idx)
                )
            delivered_states: set[int] = set()
            for source in component:
                if source == destination:
                    continue
                checked += 1
                if not _route_covers(
                    network, entry.memo, index[source], dest_idx, fmask, delivered_states
                ):
                    result = route_indexed(network, entry.memo, index[source], dest_idx, fmask)
                    outcome = Counterexample(source, destination, failures, result)
                    break
        while len(entry.outcomes) >= MASK_MEMO_LIMIT:
            entry.outcomes.popitem(last=False)
        entry.outcomes[failures] = (checked, outcome)
        return (checked, outcome)

    def _masked_verdict(self, topology, spec, graph, destination, masks) -> Verdict:
        """Fold memoized per-mask outcomes into the sweep's exact verdict."""
        state = self.session.state(graph)
        entry = self._pattern_entry(topology, spec, graph, destination)
        checked = 0
        for failures in masks:
            count, counterexample = self._mask_outcome(state, entry, destination, failures)
            checked += count
            if counterexample is not None:
                return Verdict(False, checked, counterexample, exhaustive=False)
        return Verdict(True, checked, exhaustive=False)

    # -- ops ---------------------------------------------------------------

    def verdict(self, params: dict, deadline: Deadline | None = None):
        """One resilience verdict; returns ``(record, partial)``.

        With a failure-model spec this is exactly ``run_grid``'s
        resilience cell (same grid, same checker path, same record
        shape); with an explicit ``failure_sets`` list it is exactly
        ``sweep_resilience`` over those masks.  A *sampled* model
        (``"iid:p=0.02,samples=500"``) answers with a point estimate
        and Wilson CI bounds via :func:`repro.failures.
        estimate_resilience`; a deadline-cut estimate is ``partial``
        (and never cached).
        """
        topology = str(_require(params, "topology"))
        spec = self._scheme(str(_require(params, "scheme")))
        graph = self.graph(topology)
        if not spec.applicable(graph):
            raise SchemeNotApplicable(f"{spec.name} requires {spec.requires}")
        algorithm = spec.instantiate()
        explicit = params.get("failure_sets")
        start = time.perf_counter()
        if explicit is not None:
            masks = failure_sets_from_json(explicit)
            destination = params.get("destination")
            if destination is not None:
                destination = node_from_json(destination)
                if destination not in graph:
                    raise QueryError(f"destination {destination!r} is not a node of {topology}")
            label = _explicit_label(masks, destination)
            if (
                destination is not None
                and isinstance(algorithm, DestinationAlgorithm)
                and deadline is None
            ):
                # the coalescing fast path: per-mask outcomes are
                # memoized, so repeated/overlapping queries share walks
                verdict = self._masked_verdict(topology, spec, graph, destination, masks)
            else:
                grid = ScenarioGrid(
                    destinations=[destination] if destination is not None else None,
                    failure_sets=masks,
                )
                verdict = sweep_resilience(
                    graph,
                    algorithm,
                    grid,
                    state=self.session.state(graph),
                    backend=self.session.backend,
                    deadline=deadline,
                ).verdict
            record_params = {"model": spec.arity, "destination": node_to_json(destination)}
        else:
            model = _failure_model(params)
            label = model.label
            if model.sampled:
                # Monte-Carlo models stream through the estimator and
                # answer with a point estimate plus Wilson CI bounds —
                # the exact shape run_grid's sampled cells record
                estimate = estimate_resilience(
                    graph, algorithm, model, session=self.session, deadline=deadline
                )
                record = ExperimentRecord(
                    experiment="resilience",
                    topology=topology,
                    scheme=spec.name,
                    failure_model=label,
                    metrics=estimate.metrics(),
                    series=list(estimate.series),
                    params={"model": spec.arity},
                    runtime_seconds=time.perf_counter() - start,
                    note=estimate.note,
                )
                return record, not estimate.exhaustive
            grid_sets = model.grid(graph)
            failure_sets = [failures for size in sorted(grid_sets) for failures in grid_sets[size]]
            # the exact seam run_grid's resilience metric uses (the
            # checkers reduce to this sweep on engine backends), plus
            # the per-request deadline
            verdict = sweep_resilience(
                graph,
                algorithm,
                ScenarioGrid(failure_sets=failure_sets),
                state=self.session.state(graph),
                backend=self.session.backend,
                deadline=deadline,
            ).verdict
            record_params = {"model": spec.arity}
        partial = deadline is not None and deadline.expired()
        record = ExperimentRecord(
            experiment="resilience",
            topology=topology,
            scheme=spec.name,
            failure_model=label,
            metrics={
                "resilient": bool(verdict.resilient),
                "scenarios_checked": verdict.scenarios_checked,
                "exhaustive": bool(verdict.exhaustive),
            },
            params=record_params,
            runtime_seconds=time.perf_counter() - start,
            note=str(verdict.counterexample) if verdict.counterexample else "",
        )
        return record, partial

    def _load_workload(self, params: dict):
        """Resolve a load request's (graph, engine, demands, sets, labels)."""
        from ..traffic.matrices import build_named_matrix

        topology = str(_require(params, "topology"))
        spec = self._scheme(str(_require(params, "scheme")))
        graph = self.graph(topology)
        if not spec.applicable(graph):
            raise SchemeNotApplicable(f"{spec.name} requires {spec.requires}")
        matrix = params.get("matrix", "permutation")
        matrix_seed = params.get("matrix_seed", 0)
        destination = params.get("destination")
        try:
            demands, matrix_name = build_named_matrix(
                graph,
                matrix,
                seed=matrix_seed,
                destination=node_from_json(destination) if destination is not None else None,
            )
        except ValueError as error:
            raise QueryError(str(error)) from None
        explicit = params.get("failure_sets")
        if explicit is not None:
            sets = failure_sets_from_json(explicit)
            label = _explicit_label(sets, None)
        else:
            model = _failure_model(params)
            grid_sets = model.grid(graph)
            sets = [failures for size in sorted(grid_sets) for failures in grid_sets[size]]
            label = model.label
        algorithm = spec.instantiate()
        engine = self.session.traffic_engine(graph, algorithm)
        return topology, spec, engine, demands, matrix_name, matrix_seed, sets, label

    def _load_record(
        self, topology, spec, matrix_name, matrix_seed, label, sets, reports, elapsed
    ) -> tuple[ExperimentRecord, bool]:
        series = [
            serialize_report(report, failures) for report, failures in zip(reports, sets)
        ]
        partial = len(reports) < len(sets)
        metrics = {
            "failure_sets": len(sets),
            "completed_sets": len(reports),
            "worst_max_load": max((r.max_load for r in reports), default=0),
            "min_delivered_fraction": min((r.delivered_fraction for r in reports), default=0.0),
        }
        record = ExperimentRecord(
            experiment="load",
            topology=topology,
            scheme=spec.name,
            failure_model=label,
            metrics=metrics,
            series=series,
            params={"matrix": matrix_name, "matrix_seed": matrix_seed},
            runtime_seconds=elapsed,
        )
        return record, partial

    def load(self, params: dict, deadline: Deadline | None = None):
        """Per-failure-set load reports for one (topology, scheme, matrix).

        Exactly ``TrafficEngine.load_sweep`` on the session's cached
        engine; a deadline cut returns the completed prefix (partial).
        """
        topology, spec, engine, demands, matrix_name, matrix_seed, sets, label = (
            self._load_workload(params)
        )
        start = time.perf_counter()
        reports = engine.load_sweep(demands, sets, deadline=deadline)
        return self._load_record(
            topology, spec, matrix_name, matrix_seed, label, sets, reports,
            time.perf_counter() - start,
        )

    def grid(self, params: dict, deadline: Deadline | None = None):
        """A small ``run_grid`` (records returned, optional store merge)."""
        topologies = _require(params, "topologies")
        if not isinstance(topologies, list) or not topologies:
            raise QueryError("topologies must be a non-empty list of registry names")
        schemes = params.get("schemes")
        if schemes is not None and not isinstance(schemes, list):
            raise QueryError("schemes must be a list of registry names (or omitted)")
        metrics = params.get("metrics", list(METRICS))
        if not isinstance(metrics, list):
            raise QueryError("metrics must be a list")
        model = _failure_model(params)
        try:
            result = run_grid(
                topologies,
                schemes,
                failure_models=[model],
                metrics=metrics,
                matrix=params.get("matrix", "permutation"),
                matrix_seed=params.get("matrix_seed", 0),
                session=self.session,
                store=self.store,
                deadline=deadline,
            )
        except (KeyError, ValueError) as error:
            raise QueryError(str(error)) from None
        return result

    # -- answer cache ------------------------------------------------------

    def cache_identity(self, request: Request) -> tuple | None:
        """The store identity a request's answer lives under (None: uncached).

        Computed without touching the engine, so the server can answer
        a hot query straight off the store index.  Only whole-answer
        ops cache; ``grid`` responses are a stream of per-cell records
        (merged into the store, but keyed per cell, not per request).
        """
        params = request.params
        try:
            if request.op == "verdict":
                topology = str(_require(params, "topology"))
                scheme_name = str(_require(params, "scheme"))
                explicit = params.get("failure_sets")
                if explicit is not None:
                    masks = failure_sets_from_json(explicit)
                    destination = params.get("destination")
                    label = _explicit_label(
                        masks,
                        node_from_json(destination) if destination is not None else None,
                    )
                else:
                    label = _failure_model(params).label
                return ("resilience", topology, scheme_name, label, "")
            if request.op == "load":
                topology = str(_require(params, "topology"))
                scheme_name = str(_require(params, "scheme"))
                matrix = params.get("matrix", "permutation")
                destination = params.get("destination")
                explicit = params.get("failure_sets")
                if explicit is not None:
                    label = _explicit_label(failure_sets_from_json(explicit), None)
                else:
                    label = _failure_model(params).label
                # the record's params["matrix"] is the *resolved* name
                # (all-to-one embeds its sink) — mirror that here
                if matrix == "all-to-one":
                    graph = self.graph(topology)
                    sink = (
                        node_from_json(destination)
                        if destination is not None
                        else sorted_nodes(graph.nodes)[-1]
                    )
                    matrix = f"all-to-one({sink})"
                return ("load", topology, scheme_name, label, matrix)
        except (QueryError, ValueError):
            return None  # malformed params fail properly at compute time
        return None

    def cached_record(self, identity: tuple) -> ExperimentRecord | None:
        if self.store is None:
            return None
        record = self.store.lookup(identity)
        if record is None:
            self.stats_counters["store_misses"] += 1
            return None
        self.stats_counters["store_hits"] += 1
        telemetry = _obs.active()
        if telemetry is not None:
            telemetry.count(
                "repro_serve_cache_hits_total",
                help="answers served from the ResultStore without recomputation",
                tier="store",
            )
        return record

    def remember(self, record: ExperimentRecord) -> None:
        if self.store is not None:
            self.store.merge([record])

    # -- request execution -------------------------------------------------

    def result_from_record(self, op: str, record: ExperimentRecord) -> dict:
        """The response ``result`` object for a record (fresh or cached).

        One constructor for both paths, so a cache hit and a fresh
        compute produce the same answer shape.
        """
        if op == "verdict":
            if "estimate" in record.metrics:
                # a sampled model's answer: estimate + CI, not a sweep
                return {
                    "verdict": {
                        "resilient": record.metrics["resilient"],
                        "estimate": record.metrics["estimate"],
                        "ci_low": record.metrics["ci_low"],
                        "ci_high": record.metrics["ci_high"],
                        "samples": record.metrics["samples"],
                        "planned_samples": record.metrics["planned_samples"],
                        "exhaustive": record.metrics["exhaustive"],
                        "sampled": True,
                        "counterexample": record.note or None,
                    },
                    "record": record.to_dict(),
                }
            return {
                "verdict": {
                    "resilient": record.metrics["resilient"],
                    "scenarios_checked": record.metrics["scenarios_checked"],
                    "exhaustive": record.metrics["exhaustive"],
                    "counterexample": record.note or None,
                },
                "record": record.to_dict(),
            }
        if op == "load":
            return {"reports": record.series, "record": record.to_dict()}
        raise ValueError(f"no record-backed result for op {op!r}")

    def execute(self, request: Request) -> dict:
        """Answer one request (no cross-request batching): a response dict."""
        return self.run_batch([request])[0]

    def run_batch(self, requests: list[Request]) -> list[dict]:
        """Answer a coalesced group of compute requests in one pass.

        Load requests with explicit mask lists for the same (topology,
        scheme, matrix) become ONE ``load_sweep`` over the union of
        masks (reports are per-mask, independent of batch composition,
        so slicing per request is exact); identical requests are
        deduplicated; verdict groups share the warm pattern/mask-memo
        path.  Per-request failures become per-request error envelopes
        — one bad request never poisons its batch siblings.
        """
        telemetry = _obs.active()
        if telemetry is not None and len(requests) > 1:
            telemetry.count(
                "repro_serve_batches_total", help="coalesced request batches executed"
            )
            telemetry.count(
                "repro_serve_batched_requests_total",
                len(requests),
                help="requests answered via a coalesced batch",
            )
        if len(requests) > 1:
            self.stats_counters["batches"] += 1
            self.stats_counters["batched_requests"] += len(requests)
        responses: dict[int, dict] = {}
        #: canonical params -> response (identical queries compute once)
        seen: dict[str, dict] = {}
        union_load = self._union_load_plan(requests, responses)
        for position, request in enumerate(requests):
            if position in responses:
                continue  # answered by the union plan
            fingerprint = json.dumps(
                {"op": request.op, "params": request.params, "b": request.budget_seconds},
                sort_keys=True,
                separators=(",", ":"),
            )
            duplicate = seen.get(fingerprint)
            if duplicate is not None:
                responses[position] = dict(duplicate, id=request.id)
                continue
            # per-request tracing lives here, on the (single) compute
            # thread, where the TraceWriter's span stack is sequential
            with _obs.span("serve_request", op=request.op, request=request.id):
                response = self._execute_one(request)
            seen[fingerprint] = response
            responses[position] = response
        return [responses[position] for position in range(len(requests))]

    def _union_load_plan(self, requests: list[Request], responses: dict[int, dict]) -> None:
        """Answer same-workload explicit-mask load requests via ONE sweep."""
        groups: dict[tuple, list[int]] = {}
        for position, request in enumerate(requests):
            if (
                request.op == "load"
                and request.budget_seconds is None
                and isinstance(request.params.get("failure_sets"), list)
            ):
                key = tuple(
                    json.dumps(request.params.get(name), sort_keys=True)
                    for name in ("topology", "scheme", "matrix", "matrix_seed", "destination")
                )
                groups.setdefault(key, []).append(position)
        for positions in groups.values():
            if len(positions) < 2:
                continue
            try:
                first = requests[positions[0]]
                topology, spec, engine, demands, matrix_name, matrix_seed, _, _ = (
                    self._load_workload(first.params)
                )
                per_request = [
                    failure_sets_from_json(requests[p].params["failure_sets"])
                    for p in positions
                ]
                union: list = []
                seen_masks = set()
                for sets in per_request:
                    for failures in sets:
                        if failures not in seen_masks:
                            seen_masks.add(failures)
                            union.append(failures)
                start = time.perf_counter()
                reports = engine.load_sweep(demands, union)
                elapsed = time.perf_counter() - start
                by_mask = dict(zip(union, reports))
                for position, sets in zip(positions, per_request):
                    request = requests[position]
                    label = _explicit_label(sets, None)
                    record, partial = self._load_record(
                        topology, spec, matrix_name, matrix_seed, label, sets,
                        [by_mask[failures] for failures in sets], elapsed,
                    )
                    self.remember(record)
                    responses[position] = ok_response(
                        request.id, self.result_from_record("load", record), partial=partial
                    )
            except Exception as error:  # noqa: BLE001 - fall back to per-request paths
                for position in positions:
                    responses.pop(position, None)

    def _execute_one(self, request: Request) -> dict:
        deadline = (
            Deadline(request.budget_seconds) if request.budget_seconds is not None else None
        )
        try:
            identity = self.cache_identity(request)
            if identity is not None and deadline is None:
                record = self.cached_record(identity)
                if record is not None:
                    return ok_response(
                        request.id,
                        self.result_from_record(request.op, record),
                        cached=True,
                    )
            if request.op == "verdict":
                record, partial = self.verdict(request.params, deadline)
                if not partial:
                    self.remember(record)
                return ok_response(
                    request.id, self.result_from_record("verdict", record), partial=partial
                )
            if request.op == "load":
                record, partial = self.load(request.params, deadline)
                if not partial:
                    self.remember(record)
                return ok_response(
                    request.id, self.result_from_record("load", record), partial=partial
                )
            if request.op == "grid":
                result = self.grid(request.params, deadline)
                return ok_response(
                    request.id,
                    {
                        "records": [record.to_dict() for record in result.records],
                        "skipped": [list(entry) for entry in result.skipped],
                        "exhaustive": bool(result.exhaustive),
                    },
                    partial=not result.exhaustive,
                )
            raise QueryError(f"op {request.op!r} is not a compute op")
        except (QueryError, SchemeNotApplicable) as error:
            return error_response(request.id, type(error).__name__, str(error))
        except Exception as error:  # noqa: BLE001 - any compute bug becomes an error reply
            return error_response(request.id, type(error).__name__, str(error))

    # -- stats -------------------------------------------------------------

    def stats(self) -> dict:
        counters = dict(self.stats_counters)
        counters.update(
            {
                "uptime_seconds": time.monotonic() - self.started,
                "backend": self.session.backend,
                "session": dict(self.session.stats),
                "graphs_cached": len(self._graphs),
                "patterns_cached": len(self._patterns),
                "masks_memoized": sum(
                    len(entry.outcomes) for entry in self._patterns.values()
                ),
                "store_path": str(self.store.path) if self.store is not None else None,
                "store_records": len(self.store.identities()) if self.store is not None else 0,
            }
        )
        return counters
