"""Wire protocol of the resilience-query service: framed, versioned JSON.

A message is one *frame*: a 4-byte big-endian unsigned length followed
by that many bytes of UTF-8 JSON.  Length-prefixed framing keeps the
parser trivial (no sentinel scanning, no partial-JSON buffering) and
makes oversized or garbage input a clean :class:`ProtocolError` instead
of a hung read.

Envelopes are versioned.  A request carries ``{"v": 1, "id", "op",
"params", "budget_seconds"}``; a reply mirrors the request id and adds
``ok`` / ``result`` (or ``error``), plus two service-level flags:
``cached`` (the answer came from the memoized :class:`~repro.
experiments.results.ResultStore` without recomputation) and ``partial``
(a per-request :class:`~repro.runtime.deadline.Deadline` cut the sweep
— the result is a best-effort ``exhaustive=False`` prefix).

The id-mirroring is what makes the Lazy-Pirate client sound: a client
that timed out, reconnected and resent can discard any stale reply
whose id does not match the request in flight.

Node labels travel as JSON values; tuples (fat-tree's ``("core", 0)``
labels) become JSON arrays and are restored to tuples on the way in, so
every registered topology is addressable over the wire.

Compute ops pick their failure scenarios with either an explicit
``failure_sets`` list, a ``model`` spec string
(``"iid:p=0.01,samples=500,seed=0"`` — parsed by
:func:`repro.failures.parse_failure_model`, the same grammar the CLI
and ``run_grid`` use), or the legacy ``sizes``/``samples``/``seed``
keys (a ``random`` grid model).  Sampled models answer ``verdict``
with a point estimate plus Wilson confidence bounds instead of an
exact sweep.
"""

from __future__ import annotations

import json
import socket
import struct
from dataclasses import dataclass, field

from ..graphs.edges import FailureSet, Node, edge, edge_sort_key

#: protocol version stamped into (and required of) every envelope
PROTOCOL_VERSION = 1

#: operations the service understands
OPS = ("ping", "stats", "verdict", "load", "grid", "shutdown")

#: hard cap on one frame (requests and replies alike)
MAX_FRAME = 16 * 1024 * 1024

_HEADER = struct.Struct(">I")


class ProtocolError(ValueError):
    """A frame or envelope that violates the wire protocol."""


# ---------------------------------------------------------------------------
# Framing.
# ---------------------------------------------------------------------------


def encode_frame(payload: dict) -> bytes:
    """One wire frame: length prefix + canonical JSON body."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds MAX_FRAME={MAX_FRAME}")
    return _HEADER.pack(len(body)) + body


def decode_body(body: bytes) -> dict:
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError(f"frame body is not JSON: {error}") from None
    if not isinstance(payload, dict):
        raise ProtocolError(f"frame body must be a JSON object, got {type(payload).__name__}")
    return payload


def frame_length(header: bytes) -> int:
    """Validated body length from a 4-byte frame header."""
    if len(header) != _HEADER.size:
        raise ProtocolError(f"truncated frame header ({len(header)} bytes)")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds MAX_FRAME={MAX_FRAME}")
    return length


async def read_frame(reader) -> dict:
    """Read one frame from an asyncio stream (raises on EOF mid-frame)."""
    header = await reader.readexactly(_HEADER.size)
    body = await reader.readexactly(frame_length(header))
    return decode_body(body)


def write_frame(writer, payload: dict) -> None:
    writer.write(encode_frame(payload))


def _recv_exactly(sock: socket.socket, n: int) -> bytes:
    """Blocking exact read; raises ConnectionError on EOF mid-message."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionError(f"connection closed {remaining} bytes short of a frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_frame(sock: socket.socket, payload: dict) -> None:
    sock.sendall(encode_frame(payload))


def recv_frame(sock: socket.socket) -> dict:
    """Blocking read of one frame (socket timeouts surface as OSError)."""
    header = _recv_exactly(sock, _HEADER.size)
    return decode_body(_recv_exactly(sock, frame_length(header)))


# ---------------------------------------------------------------------------
# Envelopes.
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Request:
    """A validated request envelope."""

    id: str
    op: str
    params: dict = field(default_factory=dict)
    budget_seconds: float | None = None

    def to_payload(self) -> dict:
        return {
            "v": PROTOCOL_VERSION,
            "id": self.id,
            "op": self.op,
            "params": self.params,
            "budget_seconds": self.budget_seconds,
        }


def parse_request(payload: dict) -> Request:
    """Validate a request envelope (version, op, shapes)."""
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported protocol version {version!r} (speak v{PROTOCOL_VERSION})")
    request_id = payload.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("request id must be a non-empty string")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(f"unknown op {op!r}; known: {', '.join(OPS)}")
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError("params must be a JSON object")
    budget = payload.get("budget_seconds")
    if budget is not None:
        if not isinstance(budget, (int, float)) or isinstance(budget, bool) or budget < 0:
            raise ProtocolError(f"budget_seconds must be a non-negative number, got {budget!r}")
        budget = float(budget)
    return Request(id=request_id, op=op, params=params, budget_seconds=budget)


def ok_response(request_id: str, result: dict, partial: bool = False, cached: bool = False) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": True,
        "partial": bool(partial),
        "cached": bool(cached),
        "result": result,
    }


def error_response(request_id: str, kind: str, message: str) -> dict:
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "error": {"type": kind, "message": message},
    }


def parse_response(payload: dict) -> dict:
    """Validate a reply envelope shape (the client's half of the contract)."""
    if payload.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(f"unsupported reply version {payload.get('v')!r}")
    if not isinstance(payload.get("id"), str):
        raise ProtocolError("reply is missing its request id")
    ok = payload.get("ok")
    if ok is True:
        if not isinstance(payload.get("result"), dict):
            raise ProtocolError("ok reply is missing its result object")
    elif ok is False:
        error = payload.get("error")
        if not isinstance(error, dict) or "message" not in error:
            raise ProtocolError("error reply is missing its error object")
    else:
        raise ProtocolError("reply must set ok to true or false")
    return payload


# ---------------------------------------------------------------------------
# Node / failure-set JSON codecs.
# ---------------------------------------------------------------------------


def node_to_json(node: Node):
    """JSON encoding of a node label (tuples become arrays)."""
    if isinstance(node, tuple):
        return [node_to_json(part) for part in node]
    return node


def node_from_json(value) -> Node:
    """Inverse of :func:`node_to_json` (arrays become tuples)."""
    if isinstance(value, list):
        return tuple(node_from_json(part) for part in value)
    return value


def failure_set_to_json(failures: FailureSet) -> list:
    """Canonical JSON list-of-pairs form of one failure set (sorted,
    each pair in canonical ``edge()`` order)."""
    return [
        [node_to_json(u), node_to_json(v)]
        for u, v in sorted((edge(*pair) for pair in failures), key=edge_sort_key)
    ]


def failure_set_from_json(pairs) -> FailureSet:
    if not isinstance(pairs, list):
        raise ProtocolError(f"a failure set must be a list of [u, v] pairs, got {pairs!r}")
    links = []
    for pair in pairs:
        if not isinstance(pair, list) or len(pair) != 2:
            raise ProtocolError(f"not a link pair: {pair!r}")
        try:
            links.append(edge(node_from_json(pair[0]), node_from_json(pair[1])))
        except ValueError as error:  # self-loop
            raise ProtocolError(str(error)) from None
    return frozenset(links)


def failure_sets_from_json(sets) -> list[FailureSet]:
    if not isinstance(sets, list):
        raise ProtocolError("failure_sets must be a list of failure sets")
    return [failure_set_from_json(pairs) for pairs in sets]


def failure_sets_to_json(sets) -> list:
    return [failure_set_to_json(failures) for failures in sets]
