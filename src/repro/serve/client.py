"""Lazy-Pirate client for the resilience-query service.

The reliability pattern is the ZeroMQ Guide's "Lazy Pirate" adapted to
a plain TCP stream: the client sends a request, polls for the reply
with a bounded timeout, and on timeout or connection failure *closes
the socket, reconnects, and resends the same envelope* — up to a retry
budget.  Two properties make the resend sound:

* request ids are unique and replies mirror them, so a stale reply
  from an abandoned attempt is recognized and discarded instead of
  being mistaken for the current answer;
* every service op is either read-only or idempotent (a ``verdict`` /
  ``load`` recompute merges the same record identity; ``shutdown``
  twice is still shut down), so a resend after a half-processed
  request cannot corrupt anything.

A server killed mid-request therefore looks like one slow attempt: the
client reconnects (to the restarted server) and gets a fresh answer —
the CI smoke job does exactly this.
"""

from __future__ import annotations

import itertools
import os
import socket
import time

from .protocol import (
    ProtocolError,
    Request,
    parse_response,
    recv_frame,
    send_frame,
)

#: defaults tuned for "local service, possibly mid-restart"
DEFAULT_TIMEOUT = 10.0
DEFAULT_RETRIES = 3
DEFAULT_RETRY_BACKOFF = 0.1


class ServeError(RuntimeError):
    """Base class for client-side service errors."""


class ServeTimeout(ServeError):
    """All retries exhausted without a matching reply."""


class RemoteError(ServeError):
    """The service answered with an error envelope."""

    def __init__(self, kind: str, message: str):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message


class QueryClient:
    """A blocking Lazy-Pirate client (one in-flight request at a time).

    Usage::

        with QueryClient(port=7421) as client:
            reply = client.verdict("gadget-3", "hdp", sizes=[1, 2])
            reply["result"]["verdict"]["resilient"]
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 7421,
        timeout: float = DEFAULT_TIMEOUT,
        retries: int = DEFAULT_RETRIES,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retries = retries
        self.retry_backoff = retry_backoff
        self._sock: socket.socket | None = None
        # unique-per-client id prefix: stale replies (from a timed-out
        # attempt, or another client's crosstalk) never match
        self._id_prefix = os.urandom(4).hex()
        self._id_counter = itertools.count(1)
        self.stats = {"requests": 0, "retries": 0, "stale_replies_discarded": 0}

    # -- connection management --------------------------------------------

    def _connected(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection((self.host, self.port), timeout=self.timeout)
            sock.settimeout(self.timeout)
            self._sock = sock
        return self._sock

    def _disconnect(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def close(self) -> None:
        self._disconnect()

    def __enter__(self) -> "QueryClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- the Lazy-Pirate request loop --------------------------------------

    def request(
        self,
        op: str,
        params: dict | None = None,
        budget_seconds: float | None = None,
        raise_on_error: bool = True,
    ) -> dict:
        """Send one request reliably; returns the full reply envelope.

        Retries (reconnect + resend) on timeout, connection loss, and
        protocol garbage; discards replies whose id does not match the
        in-flight request.  Raises :class:`ServeTimeout` when the retry
        budget is exhausted and :class:`RemoteError` for service-side
        error envelopes (unless ``raise_on_error=False``).
        """
        request_id = f"{self._id_prefix}-{next(self._id_counter)}"
        payload = Request(
            id=request_id, op=op, params=params or {}, budget_seconds=budget_seconds
        ).to_payload()
        self.stats["requests"] += 1
        last_error: Exception | None = None
        for attempt in range(self.retries + 1):
            if attempt:
                self.stats["retries"] += 1
                if self.retry_backoff:
                    time.sleep(self.retry_backoff * attempt)
            try:
                sock = self._connected()
                send_frame(sock, payload)
                reply = self._await_reply(sock, request_id)
            except (OSError, ProtocolError) as error:
                # covers refused connections, timeouts (socket.timeout
                # is an OSError), resets, and framing garbage: the
                # socket is in an unknown state — drop it and resend
                # on a fresh connection
                self._disconnect()
                last_error = error
                continue
            if not reply.get("ok") and raise_on_error:
                error = reply.get("error", {})
                raise RemoteError(error.get("type", "Error"), error.get("message", ""))
            return reply
        raise ServeTimeout(
            f"no reply to {op!r} after {self.retries + 1} attempts "
            f"(last error: {last_error})"
        )

    def _await_reply(self, sock: socket.socket, request_id: str) -> dict:
        """Read replies until the one mirroring ``request_id`` arrives.

        Non-matching replies are responses to requests this client
        already gave up on — the Lazy-Pirate discard rule.
        """
        while True:
            reply = parse_response(recv_frame(sock))
            if reply["id"] == request_id:
                return reply
            self.stats["stale_replies_discarded"] += 1

    # -- op conveniences ---------------------------------------------------

    def ping(self) -> dict:
        return self.request("ping")

    def server_stats(self) -> dict:
        return self.request("stats")["result"]

    def verdict(
        self,
        topology: str,
        scheme: str,
        failure_sets: list | None = None,
        destination=None,
        sizes: list | None = None,
        samples: int = 10,
        seed: int = 0,
        model: str | None = None,
        budget_seconds: float | None = None,
    ) -> dict:
        params: dict = {"topology": topology, "scheme": scheme}
        if failure_sets is not None:
            params["failure_sets"] = failure_sets
            if destination is not None:
                params["destination"] = destination
        elif model is not None:
            params["model"] = model
        else:
            params.update({"sizes": sizes, "samples": samples, "seed": seed})
        return self.request("verdict", params, budget_seconds=budget_seconds)

    def load(
        self,
        topology: str,
        scheme: str,
        matrix: str = "permutation",
        matrix_seed: int = 0,
        failure_sets: list | None = None,
        sizes: list | None = None,
        samples: int = 10,
        seed: int = 0,
        model: str | None = None,
        budget_seconds: float | None = None,
    ) -> dict:
        params: dict = {
            "topology": topology,
            "scheme": scheme,
            "matrix": matrix,
            "matrix_seed": matrix_seed,
        }
        if failure_sets is not None:
            params["failure_sets"] = failure_sets
        elif model is not None:
            params["model"] = model
        else:
            params.update({"sizes": sizes, "samples": samples, "seed": seed})
        return self.request("load", params, budget_seconds=budget_seconds)

    def grid(
        self,
        topologies: list,
        schemes: list | None = None,
        metrics: list | None = None,
        sizes: list | None = None,
        samples: int = 10,
        seed: int = 0,
        model: str | None = None,
        matrix: str = "permutation",
        matrix_seed: int = 0,
        budget_seconds: float | None = None,
    ) -> dict:
        params: dict = {
            "topologies": topologies,
            "schemes": schemes,
            "matrix": matrix,
            "matrix_seed": matrix_seed,
        }
        if model is not None:
            params["model"] = model
        else:
            params.update({"sizes": sizes, "samples": samples, "seed": seed})
        if metrics is not None:
            params["metrics"] = metrics
        return self.request("grid", params, budget_seconds=budget_seconds)

    def shutdown(self) -> dict:
        return self.request("shutdown")
