"""Render telemetry artifacts as human-readable hotspot reports.

Two input shapes, both produced by ``repro experiments``:

* a **trace file** (span JSONL from :class:`repro.obs.trace.TraceWriter`)
  — aggregated per span name into call counts, total/mean/max self and
  wall time, sorted by total time: the "where did the run go" view;
* a **metrics snapshot** (JSON from
  :meth:`repro.obs.metrics.MetricsRegistry.write_snapshot`) — rendered
  as the Prometheus text exposition plus derived cache hit rates.

``repro stats FILE`` sniffs which one it got.
"""

from __future__ import annotations

from pathlib import Path

from .metrics import MetricsRegistry, load_snapshot
from .trace import TraceError, validate_trace


def sniff_kind(path: str | Path) -> str:
    """``"trace"`` for JSONL span files, ``"metrics"`` for snapshots."""
    text = Path(path).read_text(encoding="utf-8").lstrip()
    if not text:
        raise ValueError(f"{path}: empty file")
    if text.startswith("{") and '"families"' in text.split("\n", 1)[0] + text[:200]:
        # a snapshot is one pretty-printed object whose first key is
        # "families"; a trace line is a compact object with "event"
        first = text.split("\n", 1)[0]
        if '"event"' not in first:
            return "metrics"
    return "trace"


def aggregate_spans(events: list[dict]) -> list[dict]:
    """Per-name span aggregates, sorted by total duration descending.

    ``self`` time is a span's duration minus its direct children's —
    the hotspot column: a cell whose time is all inside sweeps has
    near-zero self time.
    """
    open_child_time: dict[int, float] = {}
    rows: dict[str, dict] = {}
    points: dict[str, int] = {}
    for event in events:
        kind = event["event"]
        if kind == "point":
            points[event["name"]] = points.get(event["name"], 0) + 1
            continue
        if kind != "end":
            continue
        name = event["name"]
        dur = event["dur"]
        child_time = open_child_time.pop(event["span"], 0.0)
        parent = event.get("parent")
        if parent is not None:
            open_child_time[parent] = open_child_time.get(parent, 0.0) + dur
        row = rows.setdefault(
            name, {"name": name, "count": 0, "total": 0.0, "self": 0.0, "max": 0.0}
        )
        row["count"] += 1
        row["total"] += dur
        row["self"] += max(0.0, dur - child_time)
        row["max"] = max(row["max"], dur)
    out = sorted(rows.values(), key=lambda row: (-row["total"], row["name"]))
    for name in sorted(points):
        out.append(
            {"name": name, "count": points[name], "total": None, "self": None, "max": None}
        )
    return out


def render_trace_report(path: str | Path, top: int = 20) -> str:
    """The hotspot table for a trace file (validates it first)."""
    events = validate_trace(path)
    rows = aggregate_spans(events)
    span_rows = [row for row in rows if row["total"] is not None][:top]
    point_rows = [row for row in rows if row["total"] is None]
    lines = [f"trace: {path} — {len(events)} events, {len(span_rows)} span kinds"]
    if span_rows:
        header = f"{'span':<28} {'count':>7} {'total s':>9} {'self s':>9} {'mean ms':>9} {'max s':>9}"
        lines.append(header)
        lines.append("-" * len(header))
        for row in span_rows:
            mean_ms = row["total"] / row["count"] * 1000.0
            lines.append(
                f"{row['name']:<28} {row['count']:>7} {row['total']:>9.3f} "
                f"{row['self']:>9.3f} {mean_ms:>9.3f} {row['max']:>9.3f}"
            )
    if point_rows:
        lines.append("")
        lines.append("events:")
        for row in point_rows:
            lines.append(f"  {row['name']:<28} {row['count']:>7}")
    return "\n".join(lines) + "\n"


#: (hits family, misses family, label) pairs the report derives rates for
_RATE_PAIRS = (
    ("repro_engine_memo_hits_total", "repro_engine_memo_misses_total", "memo table"),
    (
        "repro_session_state_cache_hits_total",
        "repro_session_state_cache_misses_total",
        "session state cache",
    ),
    (
        "repro_session_traffic_cache_hits_total",
        "repro_session_traffic_cache_misses_total",
        "session traffic cache",
    ),
)


def _family_total(snapshot: dict, name: str) -> float:
    family = snapshot.get("families", {}).get(name)
    if family is None:
        return 0.0
    return sum(sample.get("value", 0.0) for sample in family["samples"])


def render_metrics_report(path: str | Path) -> str:
    """Prometheus exposition of a snapshot, plus derived hit rates."""
    snapshot = load_snapshot(path)
    registry = MetricsRegistry()
    registry.merge(snapshot)
    lines = [registry.render_prometheus().rstrip("\n")]
    rates = []
    for hits_name, misses_name, label in _RATE_PAIRS:
        hits = _family_total(snapshot, hits_name)
        misses = _family_total(snapshot, misses_name)
        if hits or misses:
            rates.append(f"  {label}: {hits / (hits + misses):.1%} hit rate "
                         f"({hits:.0f} hits / {misses:.0f} misses)")
    if rates:
        lines.append("")
        lines.append("derived:")
        lines.extend(rates)
    return "\n".join(lines) + "\n"


def render_report(path: str | Path, top: int = 20) -> str:
    """Sniff ``path`` and render the matching report."""
    kind = sniff_kind(path)
    if kind == "metrics":
        return render_metrics_report(path)
    try:
        return render_trace_report(path, top=top)
    except TraceError as error:
        raise ValueError(f"{path}: invalid trace — {error}") from None
