"""Deterministic, zero-dependency observability: metrics + span traces.

This is the bottom-most layer of the package — it imports nothing from
the rest of ``repro``, so every other layer (runtime, engine, traffic,
experiments) is free to instrument itself against it.

Activation is explicit and process-global: instrumented code does ::

    from repro import obs
    telemetry = obs.active()
    if telemetry is not None:
        telemetry.count("repro_engine_walks_total", kind="indexed")

and pays exactly one module-global read when telemetry is off — the
hard requirement that keeps the innermost mask-walk loops clean.  The
CLI (or a test) turns telemetry on for a region with ::

    with obs.installed(obs.Telemetry(trace_path="trace.jsonl")) as telemetry:
        run_grid(...)
        print(telemetry.registry.render_prometheus())

Telemetry never feeds back into results: nothing in this package is
read by verdict or record code, and the determinism suite pins a
telemetry-on grid run byte-identical to a telemetry-off one.
"""

from __future__ import annotations

import contextlib
import os

from .metrics import DEFAULT_BUCKETS, MetricsRegistry, diff_snapshots, load_snapshot
from .stats import render_metrics_report, render_report, render_trace_report
from .trace import TraceError, TraceWriter, read_trace, validate_trace

__all__ = [
    "DEFAULT_BUCKETS",
    "MetricsRegistry",
    "Telemetry",
    "TraceError",
    "TraceWriter",
    "active",
    "diff_snapshots",
    "installed",
    "load_snapshot",
    "point",
    "read_trace",
    "render_metrics_report",
    "render_report",
    "render_trace_report",
    "span",
    "validate_trace",
]


class Telemetry:
    """One activation's worth of telemetry: a registry, optionally a trace.

    Forked workers inherit the active ``Telemetry`` object; the metrics
    registry is per-process (workers diff-and-ship deltas which the
    parent merges — see ``parallel_map``), while the trace writer pid-
    guards itself so only the opening process writes the file.
    """

    def __init__(self, trace_path=None, metrics: bool = True):
        self.registry = MetricsRegistry() if metrics else None
        self.trace = TraceWriter(trace_path) if trace_path is not None else None
        self._pid = os.getpid()

    # -- metrics convenience (no-ops when metrics were disabled) -----------

    def count(self, name: str, value: float = 1.0, help: str = "", **labels) -> None:
        if self.registry is not None:
            self.registry.count(name, value, help, **labels)

    def observe(self, name: str, value: float, help: str = "", **labels) -> None:
        if self.registry is not None:
            self.registry.observe(name, value, help, **labels)

    def gauge_max(self, name: str, value: float, help: str = "", **labels) -> None:
        if self.registry is not None:
            self.registry.gauge_max(name, value, help, **labels)

    def set_gauge(self, name: str, value: float, help: str = "", **labels) -> None:
        if self.registry is not None:
            self.registry.set_gauge(name, value, help, **labels)

    # -- trace convenience (no-ops without a trace writer) -----------------

    def point(self, name: str, **attrs) -> None:
        if self.trace is not None:
            self.trace.point(name, **attrs)

    def span(self, name: str, **attrs):
        if self.trace is not None:
            return self.trace.span(name, **attrs)
        return contextlib.nullcontext()

    def close(self) -> None:
        if self.trace is not None:
            self.trace.close()

    def __enter__(self) -> "Telemetry":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


#: the process-global activation; ``None`` keeps instrumentation free
_ACTIVE: Telemetry | None = None


def active() -> Telemetry | None:
    """The installed :class:`Telemetry`, or ``None`` (the default)."""
    return _ACTIVE


@contextlib.contextmanager
def installed(telemetry: Telemetry):
    """Install ``telemetry`` as the process-global activation.

    Re-entrant installs nest (the previous activation is restored on
    exit); the telemetry object is *not* closed here — the creator owns
    the trace file handle.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = telemetry
    try:
        yield telemetry
    finally:
        _ACTIVE = previous


def span(name: str, **attrs):
    """A trace span against the active telemetry (no-op when off)."""
    telemetry = _ACTIVE
    if telemetry is None or telemetry.trace is None:
        return contextlib.nullcontext()
    return telemetry.trace.span(name, **attrs)


def point(name: str, **attrs) -> None:
    """A trace point against the active telemetry (no-op when off)."""
    telemetry = _ACTIVE
    if telemetry is not None and telemetry.trace is not None:
        telemetry.trace.point(name, **attrs)
