"""A process-local metrics registry: labeled counters, gauges, histograms.

Zero dependencies, deterministic by construction:

* families are created on first use and keyed by name; every sample is
  keyed by its sorted ``(label, value)`` pairs, so snapshots and the
  Prometheus text exposition render in one canonical order regardless
  of instrumentation order;
* histogram bucket bounds are **fixed at family creation** (defaults in
  :data:`DEFAULT_BUCKETS`) — two registries observing the same events
  produce identical snapshots, which is what makes the snapshot/merge
  workflow sound;
* :meth:`MetricsRegistry.snapshot` / :meth:`MetricsRegistry.merge` /
  :func:`diff_snapshots` give forked workers a way to ship *only what
  they measured* back with their chunk results: the worker diffs its
  registry against the snapshot taken at task entry and the parent
  merges the delta — counters and histograms add, gauges keep the
  maximum (they record high-water marks, e.g. memo-table sizes).

The registry is instrumentation plumbing, not policy: it never touches
experiment results, and nothing here reads clocks — durations arrive
from callers as plain observations.
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left

#: default histogram bucket upper bounds (seconds-flavoured, +Inf implied)
DEFAULT_BUCKETS = (
    0.001,
    0.005,
    0.01,
    0.05,
    0.1,
    0.5,
    1.0,
    5.0,
    10.0,
    50.0,
)

_KINDS = ("counter", "gauge", "histogram")


def _label_key(labels: dict) -> tuple:
    """Canonical sample identity: sorted (name, value) pairs."""
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class _Family:
    """One named metric family: a kind, a help line, labeled samples."""

    def __init__(self, name: str, kind: str, help: str = "", buckets=None):
        if kind not in _KINDS:
            raise ValueError(f"metric kind must be one of {_KINDS}, got {kind!r}")
        self.name = name
        self.kind = kind
        self.help = help
        if kind == "histogram":
            bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
            if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
                raise ValueError(f"histogram buckets must strictly increase: {bounds}")
            self.buckets = bounds
        else:
            self.buckets = None
        #: label key -> float value (counter/gauge) or
        #: [bucket counts incl. +Inf, sum, count] (histogram)
        self.samples: dict[tuple, object] = {}

    # -- updates -----------------------------------------------------------

    def inc(self, value: float = 1.0, **labels) -> None:
        if self.kind != "counter":
            raise TypeError(f"{self.name} is a {self.kind}, not a counter")
        if value < 0:
            raise ValueError(f"counters only go up: {self.name} += {value}")
        key = _label_key(labels)
        self.samples[key] = self.samples.get(key, 0.0) + value

    def set(self, value: float, **labels) -> None:
        if self.kind != "gauge":
            raise TypeError(f"{self.name} is a {self.kind}, not a gauge")
        self.samples[_label_key(labels)] = float(value)

    def set_max(self, value: float, **labels) -> None:
        """Gauge high-water mark: keep the larger of old and new."""
        if self.kind != "gauge":
            raise TypeError(f"{self.name} is a {self.kind}, not a gauge")
        key = _label_key(labels)
        current = self.samples.get(key)
        if current is None or value > current:
            self.samples[key] = float(value)

    def observe(self, value: float, **labels) -> None:
        if self.kind != "histogram":
            raise TypeError(f"{self.name} is a {self.kind}, not a histogram")
        key = _label_key(labels)
        state = self.samples.get(key)
        if state is None:
            state = [[0] * (len(self.buckets) + 1), 0.0, 0]
            self.samples[key] = state
        counts, _, _ = state
        counts[bisect_left(self.buckets, value)] += 1
        state[1] += value
        state[2] += 1

    # -- reads -------------------------------------------------------------

    def value(self, **labels) -> float:
        """The scalar value of one sample (0 when never touched)."""
        if self.kind == "histogram":
            raise TypeError(f"{self.name} is a histogram; read .samples")
        return float(self.samples.get(_label_key(labels), 0.0))


class MetricsRegistry:
    """All metric families of one process (or one shipped worker delta)."""

    def __init__(self):
        self._families: dict[str, _Family] = {}

    # -- family creation ---------------------------------------------------

    def _family(self, name: str, kind: str, help: str, buckets=None) -> _Family:
        family = self._families.get(name)
        if family is None:
            family = _Family(name, kind, help, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        return family

    def counter(self, name: str, help: str = "") -> _Family:
        return self._family(name, "counter", help)

    def gauge(self, name: str, help: str = "") -> _Family:
        return self._family(name, "gauge", help)

    def histogram(self, name: str, help: str = "", buckets=None) -> _Family:
        return self._family(name, "histogram", help, buckets)

    # -- convenience updates (the instrumentation call surface) ------------

    def count(self, name: str, value: float = 1.0, help: str = "", **labels) -> None:
        self.counter(name, help).inc(value, **labels)

    def set_gauge(self, name: str, value: float, help: str = "", **labels) -> None:
        self.gauge(name, help).set(value, **labels)

    def gauge_max(self, name: str, value: float, help: str = "", **labels) -> None:
        self.gauge(name, help).set_max(value, **labels)

    def observe(self, name: str, value: float, help: str = "", **labels) -> None:
        self.histogram(name, help).observe(value, **labels)

    def value(self, name: str, **labels) -> float:
        """Scalar read (0.0 for families or samples never touched)."""
        family = self._families.get(name)
        return 0.0 if family is None else family.value(**labels)

    def families(self) -> list[str]:
        return sorted(self._families)

    # -- snapshot / merge / diff -------------------------------------------

    def snapshot(self) -> dict:
        """A canonical, JSON-able copy of every family.

        Families and samples are sorted, so two registries that measured
        the same events serialize byte-identically.
        """
        families = {}
        for name in sorted(self._families):
            family = self._families[name]
            samples = []
            for key in sorted(family.samples):
                value = family.samples[key]
                entry: dict = {"labels": [list(pair) for pair in key]}
                if family.kind == "histogram":
                    counts, total, count = value
                    entry["counts"] = list(counts)
                    entry["sum"] = total
                    entry["count"] = count
                else:
                    entry["value"] = value
                samples.append(entry)
            families[name] = {
                "kind": family.kind,
                "help": family.help,
                "samples": samples,
            }
            if family.kind == "histogram":
                families[name]["buckets"] = list(family.buckets)
        return {"families": families}

    def merge(self, snapshot: dict) -> None:
        """Fold a snapshot in: counters/histograms add, gauges keep max."""
        for name, data in snapshot.get("families", {}).items():
            kind = data["kind"]
            family = self._family(name, kind, data.get("help", ""), data.get("buckets"))
            if kind == "histogram" and list(family.buckets) != list(data["buckets"]):
                raise ValueError(
                    f"histogram {name!r} bucket bounds differ; cannot merge"
                )
            for sample in data["samples"]:
                key = tuple(tuple(pair) for pair in sample["labels"])
                if kind == "counter":
                    family.samples[key] = family.samples.get(key, 0.0) + sample["value"]
                elif kind == "gauge":
                    current = family.samples.get(key)
                    if current is None or sample["value"] > current:
                        family.samples[key] = sample["value"]
                else:
                    state = family.samples.get(key)
                    if state is None:
                        state = [[0] * (len(family.buckets) + 1), 0.0, 0]
                        family.samples[key] = state
                    for i, c in enumerate(sample["counts"]):
                        state[0][i] += c
                    state[1] += sample["sum"]
                    state[2] += sample["count"]

    # -- exposition --------------------------------------------------------

    def render_prometheus(self) -> str:
        """Prometheus text exposition of the whole registry (canonical order)."""
        lines: list[str] = []
        for name in sorted(self._families):
            family = self._families[name]
            if family.help:
                lines.append(f"# HELP {name} {family.help}")
            lines.append(f"# TYPE {name} {family.kind}")
            for key in sorted(family.samples):
                value = family.samples[key]
                if family.kind == "histogram":
                    counts, total, count = value
                    cumulative = 0
                    for bound, bucket_count in zip(family.buckets, counts):
                        cumulative += bucket_count
                        lines.append(
                            f"{name}_bucket{_render_labels(key, le=_format_bound(bound))}"
                            f" {cumulative}"
                        )
                    cumulative += counts[-1]
                    lines.append(f'{name}_bucket{_render_labels(key, le="+Inf")} {cumulative}')
                    lines.append(f"{name}_sum{_render_labels(key)} {_format_value(total)}")
                    lines.append(f"{name}_count{_render_labels(key)} {count}")
                else:
                    lines.append(f"{name}{_render_labels(key)} {_format_value(value)}")
        return "\n".join(lines) + ("\n" if lines else "")

    def write_snapshot(self, path) -> None:
        """Write the snapshot as JSON (the ``repro stats`` input format)."""
        import pathlib

        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(self.snapshot(), indent=2, sort_keys=True) + "\n")


def _render_labels(key: tuple, **extra) -> str:
    pairs = list(key) + sorted(extra.items())
    if not pairs:
        return ""
    body = ",".join(f'{name}="{_escape(value)}"' for name, value in pairs)
    return "{" + body + "}"


def _escape(value) -> str:
    return str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_bound(bound: float) -> str:
    return _format_value(bound)


def _format_value(value: float) -> str:
    if isinstance(value, float) and math.isfinite(value) and value == int(value):
        return str(int(value))
    return repr(float(value))


def diff_snapshots(before: dict, after: dict) -> dict:
    """``after - before``, the worker-delta a forked task ships home.

    Counters and histogram counts/sums subtract (both only grow within
    one process, so the difference is exactly the work done between the
    two snapshots); gauges keep the *after* value (merging by max then
    does the right high-water-mark thing in the parent).  Samples that
    did not change are dropped, so idle families cost nothing on the
    wire.
    """
    before_families = before.get("families", {})
    out_families: dict = {}
    for name, data in after.get("families", {}).items():
        base = before_families.get(name, {})
        base_samples = {
            tuple(tuple(pair) for pair in sample["labels"]): sample
            for sample in base.get("samples", [])
        }
        kind = data["kind"]
        samples = []
        for sample in data["samples"]:
            key = tuple(tuple(pair) for pair in sample["labels"])
            prior = base_samples.get(key)
            if kind == "counter":
                delta = sample["value"] - (prior["value"] if prior else 0.0)
                if delta:
                    samples.append({"labels": sample["labels"], "value": delta})
            elif kind == "gauge":
                if prior is None or sample["value"] != prior["value"]:
                    samples.append(dict(sample))
            else:
                prior_counts = prior["counts"] if prior else [0] * len(sample["counts"])
                counts = [c - p for c, p in zip(sample["counts"], prior_counts)]
                count = sample["count"] - (prior["count"] if prior else 0)
                if count:
                    samples.append(
                        {
                            "labels": sample["labels"],
                            "counts": counts,
                            "sum": sample["sum"] - (prior["sum"] if prior else 0.0),
                            "count": count,
                        }
                    )
        if samples:
            entry = {"kind": kind, "help": data.get("help", ""), "samples": samples}
            if kind == "histogram":
                entry["buckets"] = data["buckets"]
            out_families[name] = entry
    return {"families": out_families}


def load_snapshot(path) -> dict:
    """Read a snapshot JSON file (raises ValueError on malformed input)."""
    import pathlib

    text = pathlib.Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as error:
        raise ValueError(f"not a metrics snapshot: {error}") from None
    if not isinstance(data, dict) or "families" not in data:
        raise ValueError('not a metrics snapshot: missing "families" key')
    return data
