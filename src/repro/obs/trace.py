"""Structured span tracing to append-only JSONL.

A :class:`TraceWriter` emits one JSON object per line to a trace file,
using the same append/flush/fsync discipline as the runtime cell
journal (reimplemented here, not imported — ``repro.obs`` sits below
``repro.runtime`` in the layer order, so the journal can itself be
traced without an import cycle).

Three event shapes share one schema::

    {"event": "start", "span": 3, "parent": 1, "name": "cell",
     "t": 12.345, "attrs": {...}}
    {"event": "end",   "span": 3, "parent": 1, "name": "cell",
     "t": 12.391, "dur": 0.046, "attrs": {...}}
    {"event": "point", "span": 4, "parent": 3, "name": "fault_fired",
     "t": 12.350, "attrs": {...}}

Span ids are process-local monotonically increasing ints; ``parent``
follows the writer's span stack (``null`` at top level).  ``t`` is
``time.monotonic()`` — durations are exact, wall-clock timestamps are
deliberately absent so traces stay diffable.  ``attrs`` values are
plain JSON scalars.

Forked ``parallel_map`` workers inherit an open writer; a pid guard
makes every emit in a child process a no-op, so the trace file is only
ever written by the process that opened it (child work is still
visible through the chunk spans and merged metrics the parent emits).

:func:`validate_trace` re-reads a trace file and checks the structural
invariants (balanced start/end, stack-consistent parents, monotone
timestamps, non-negative durations) — the CI smoke and the ``repro
stats --validate`` path both call it.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

_EVENTS = ("start", "end", "point")

_SCALARS = (str, int, float, bool, type(None))


class TraceError(ValueError):
    """A trace file violates the event schema or span invariants."""


class TraceWriter:
    """Append-only JSONL span writer with a span stack.

    Use as a context manager, or call :meth:`close` explicitly::

        with TraceWriter(path) as trace:
            with trace.span("grid", cells=12):
                ...
                trace.point("fault_fired", kind="grid-kill")
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "a", encoding="utf-8")
        self._pid = os.getpid()
        self._next_span = 1
        self._stack: list[tuple[int, str, float]] = []  # (span id, name, start t)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._handle is None:
            return
        if os.getpid() == self._pid:
            while self._stack:  # crash-robustness: close dangling spans
                self.end()
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- emission ----------------------------------------------------------

    def _emit(self, event: dict) -> None:
        handle = self._handle
        if handle is None or os.getpid() != self._pid:
            return  # closed, or a forked child holding the parent's writer
        handle.write(json.dumps(event) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def start(self, name: str, **attrs) -> int:
        """Open a span; returns its id.  Pair with :meth:`end`."""
        span_id = self._next_span
        self._next_span += 1
        parent = self._stack[-1][0] if self._stack else None
        now = time.monotonic()
        self._stack.append((span_id, name, now))
        self._emit(
            {
                "event": "start",
                "span": span_id,
                "parent": parent,
                "name": name,
                "t": now,
                "attrs": _clean(attrs),
            }
        )
        return span_id

    def end(self, **attrs) -> None:
        """Close the innermost open span (end attrs merge with none)."""
        if not self._stack:
            raise TraceError("end() with no open span")
        span_id, name, started = self._stack.pop()
        parent = self._stack[-1][0] if self._stack else None
        now = time.monotonic()
        self._emit(
            {
                "event": "end",
                "span": span_id,
                "parent": parent,
                "name": name,
                "t": now,
                "dur": now - started,
                "attrs": _clean(attrs),
            }
        )

    def point(self, name: str, **attrs) -> None:
        """An instantaneous event inside the current span (or top level)."""
        span_id = self._next_span
        self._next_span += 1
        parent = self._stack[-1][0] if self._stack else None
        self._emit(
            {
                "event": "point",
                "span": span_id,
                "parent": parent,
                "name": name,
                "t": time.monotonic(),
                "attrs": _clean(attrs),
            }
        )

    def span(self, name: str, **attrs) -> "_SpanContext":
        """Context-manager sugar around :meth:`start` / :meth:`end`."""
        return _SpanContext(self, name, attrs)


class _SpanContext:
    def __init__(self, writer: TraceWriter, name: str, attrs: dict):
        self._writer = writer
        self._name = name
        self._attrs = attrs

    def __enter__(self) -> None:
        self._writer.start(self._name, **self._attrs)

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self._writer.end()
        else:
            self._writer.end(error=exc_type.__name__)


def _clean(attrs: dict) -> dict:
    """Coerce attr values to JSON scalars (repr anything exotic)."""
    return {
        key: value if isinstance(value, _SCALARS) else repr(value)
        for key, value in attrs.items()
    }


def read_trace(path: str | Path) -> list[dict]:
    """Parse a trace file into a list of events (torn tail tolerated).

    Like the cell journal, a final line without a newline means the
    writer died mid-emit; it is skipped, not an error.
    """
    events: list[dict] = []
    raw = Path(path).read_text(encoding="utf-8")
    for line in raw.splitlines(keepends=True):
        if not line.endswith("\n"):
            break
        try:
            event = json.loads(line)
        except json.JSONDecodeError:
            raise TraceError(f"unparseable trace line: {line!r}") from None
        events.append(event)
    return events


def validate_trace(path: str | Path) -> list[dict]:
    """Check a trace file against the schema; return its events.

    Raises :class:`TraceError` on the first violation: unknown event
    type, missing fields, unbalanced or misnested start/end, a parent
    that is not the enclosing open span, non-monotone timestamps, or a
    duration that disagrees with the span's own start/end times.
    """
    events = read_trace(path)
    open_spans: dict[int, tuple[str, float]] = {}
    stack: list[int] = []
    last_t = None
    for index, event in enumerate(events):
        where = f"trace line {index + 1}"
        if not isinstance(event, dict):
            raise TraceError(f"{where}: not an object")
        kind = event.get("event")
        if kind not in _EVENTS:
            raise TraceError(f"{where}: unknown event {kind!r}")
        for field in ("span", "name", "t", "attrs"):
            if field not in event:
                raise TraceError(f"{where}: missing field {field!r}")
        if not isinstance(event["attrs"], dict):
            raise TraceError(f"{where}: attrs must be an object")
        t = event["t"]
        if last_t is not None and t < last_t:
            raise TraceError(f"{where}: timestamp went backwards ({t} < {last_t})")
        last_t = t
        expected_parent = stack[-1] if stack else None
        if kind == "start":
            if event.get("parent") != expected_parent:
                raise TraceError(
                    f"{where}: parent {event.get('parent')} != enclosing span "
                    f"{expected_parent}"
                )
            span_id = event["span"]
            if span_id in open_spans:
                raise TraceError(f"{where}: span {span_id} started twice")
            open_spans[span_id] = (event["name"], t)
            stack.append(span_id)
        elif kind == "end":
            if not stack:
                raise TraceError(f"{where}: end with no open span")
            span_id = stack.pop()
            if event["span"] != span_id:
                raise TraceError(
                    f"{where}: end of span {event['span']} but innermost open "
                    f"span is {span_id}"
                )
            name, started = open_spans.pop(span_id)
            if event["name"] != name:
                raise TraceError(
                    f"{where}: span {span_id} started as {name!r}, "
                    f"ended as {event['name']!r}"
                )
            dur = event.get("dur")
            if dur is None or dur < 0:
                raise TraceError(f"{where}: bad duration {dur!r}")
            if abs((t - started) - dur) > 1e-6:
                raise TraceError(
                    f"{where}: dur {dur} disagrees with span times "
                    f"({t} - {started})"
                )
        else:  # point
            if event.get("parent") != expected_parent:
                raise TraceError(
                    f"{where}: parent {event.get('parent')} != enclosing span "
                    f"{expected_parent}"
                )
    if stack:
        raise TraceError(f"unbalanced trace: spans {stack} never ended")
    return events
