"""Deadlines and work budgets for long sweeps.

A :class:`Deadline` is a wall-clock stop signal; a :class:`Budget`
additionally caps the number of work units.  Both are *cooperative*:
the sweeps that accept one check :meth:`~Deadline.expired` between
natural units of work (grid cells, destinations, failure buckets) and
stop cleanly — completed units are always whole, and the partial result
is flagged ``exhaustive=False``.  Work is never interrupted mid-unit,
so the numbers that do come out are exactly what an uncut run would
have produced for those units.

Checks are a couple of float comparisons, so call sites can test per
unit without measurable overhead.  Once expired, a deadline stays
expired (the flag latches): a sweep that observed the cut and a sweep
that re-checks later agree.

Forked workers (``parallel_map``) inherit the deadline object; since
``time.monotonic`` is system-wide, wall-clock expiry is consistent
across the fork.  :meth:`Budget.charge` counts in the charging process
only — unit budgets bound driver-side loops, not worker internals.
"""

from __future__ import annotations

import time
from collections.abc import Callable

from repro import obs


class Deadline:
    """A wall-clock deadline: expires ``seconds`` after construction.

    ``seconds=None`` never expires on its own but can still be latched
    manually with :meth:`expire` — the seam an any-time consumer (e.g.
    a Monte-Carlo refinement loop) uses to stop a sweep from outside.
    ``clock`` is injectable for deterministic tests.
    """

    def __init__(
        self, seconds: float | None = None, clock: Callable[[], float] = time.monotonic
    ):
        if seconds is not None and seconds < 0:
            raise ValueError(f"deadline seconds must be >= 0, got {seconds}")
        self.seconds = seconds
        self._clock = clock
        self._start = clock()
        self._expired = False

    @property
    def elapsed(self) -> float:
        """Seconds since the deadline was armed."""
        return self._clock() - self._start

    def remaining(self) -> float | None:
        """Seconds left (never negative), or ``None`` for unlimited."""
        if self.seconds is None:
            return None
        return max(0.0, self.seconds - self.elapsed)

    def expired(self) -> bool:
        """Has the limit been reached?  Latches: never un-expires."""
        if not self._expired and self.seconds is not None and self.elapsed >= self.seconds:
            self._latch("time")
        return self._expired

    def expire(self) -> None:
        """Latch the deadline as expired immediately."""
        self._latch("manual")

    def _latch(self, reason: str) -> None:
        """Flip to expired exactly once (the telemetry-visible transition)."""
        if self._expired:
            return
        self._expired = True
        telemetry = obs.active()
        if telemetry is not None:
            telemetry.count(
                "repro_deadline_expirations_total",
                help="deadline/budget latch transitions, by reason",
                reason=reason,
            )
            telemetry.point("deadline_expired", reason=reason, elapsed=self.elapsed)

    def charge(self, units: int = 1) -> bool:
        """Account ``units`` of completed work; ``True`` while not expired.

        A plain deadline only spends time, so this is just an
        :meth:`expired` check — :class:`Budget` overrides it to spend
        units.  The uniform call lets sweeps charge without caring
        which flavour they were handed.
        """
        return not self.expired()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(seconds={self.seconds}, elapsed={self.elapsed:.3f})"


class Budget(Deadline):
    """A work budget: expires after ``units`` charges (and/or ``seconds``).

    Units are whatever the accepting sweep naturally counts — grid
    cells for ``run_grid``, grid units (destinations / pairs / failure
    sets) for ``sweep_resilience``, failure sets for ``load_sweep``.
    """

    def __init__(
        self,
        units: int,
        seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if units < 0:
            raise ValueError(f"budget units must be >= 0, got {units}")
        super().__init__(seconds, clock)
        self.units = units
        self.spent = 0

    def remaining_units(self) -> int:
        return max(0, self.units - self.spent)

    def expired(self) -> bool:
        if not self._expired and self.spent >= self.units:
            self._latch("units")
        return super().expired()

    def charge(self, units: int = 1) -> bool:
        self.spent += units
        telemetry = obs.active()
        if telemetry is not None:
            telemetry.count(
                "repro_budget_charged_units_total",
                units,
                help="work units charged against budgets",
            )
        return not self.expired()
