"""Deterministic fault injection: seeded plans that break things on purpose.

The recovery paths in this package — checkpoint/resume grids, the
crash-recovering ``parallel_map``, atomic result-store writes — are only
trustworthy if something actually exercises them.  A :class:`FaultPlan`
injects failures at named *sites* instrumented through the runtime:

=============== ================================= ==========================
fault kind       where it fires                    what it simulates
=============== ================================= ==========================
``cell-error``   ``run_grid``, per grid cell       a recoverable per-cell
                                                   exception (OOM, a buggy
                                                   scheme) → typed error
                                                   record, grid continues
``grid-kill``    ``run_grid``, per grid cell       a hard crash of the whole
                                                   driver (kill -9, power
                                                   loss) — the journal keeps
                                                   every completed cell
``worker-crash`` ``parallel_map``, per item        a forked worker dying
                 (decided in the parent, executed  mid-chunk (segfault, OOM
                 in the worker via ``os._exit``)   kill)
``slow-chunk``   ``parallel_map``, per item        a wedged chunk (sleeps,
                                                   triggering the timeout
                                                   path)
``torn-write``   ``atomic_write_text``             a crash mid-write — bytes
                                                   hit the temp file, never
                                                   the store
=============== ================================= ==========================

Plans are deterministic: given the same seed and the same sequence of
site visits, the same faults fire.  ``at=``-based specs key off the
visit index (cell number, item index); ``rate=``-based specs decide by
a seeded hash of ``(seed, kind, index)``, independent of visit order.
``parallel_map`` retries pass their attempt number, so a spec can fire
on the first attempt only (the default — the retry then recovers) or on
every attempt (``attempts=all`` — the poisoned chunk then lands in the
serial fallback).

Install a plan with :meth:`FaultPlan.installed`; the instrumented sites
call the module-level :func:`fire`, which is a no-op (``None``) when no
plan is active — production runs pay one global read per site visit.
The CLI exposes plans as ``repro experiments --inject-faults
"worker-crash:at=0;cell-error:rate=0.2"``.
"""

from __future__ import annotations

import contextlib
import random
from collections.abc import Iterator, Sequence
from dataclasses import dataclass

from repro import obs


class InjectedFault(RuntimeError):
    """A recoverable injected failure (becomes a typed error record)."""


class GridKill(BaseException):
    """A simulated hard crash of the grid driver.

    Deliberately a ``BaseException``: the per-cell recovery in
    ``run_grid`` catches ``Exception``, and it must not be able to
    swallow a simulated kill any more than it could catch a real
    SIGKILL.
    """


class TornWrite(BaseException):
    """A simulated crash mid-write (bytes only ever hit the temp file)."""


#: fault kind -> instrumented site
_SITES = {
    "cell-error": "cell",
    "grid-kill": "cell",
    "worker-crash": "worker",
    "slow-chunk": "worker",
    "torn-write": "store-write",
}


@dataclass(frozen=True)
class FaultSpec:
    """One kind of fault and the visits on which it fires.

    Selectors, in precedence order: ``rate`` (seeded coin per visit
    index), ``at`` (explicit 0-based visit indices), neither (every
    visit).  ``attempts`` filters ``parallel_map`` retry attempts
    (``None`` = all attempts; the default fires on attempt 0 only, so
    the retry recovers).  ``seconds`` is the ``slow-chunk`` sleep.
    """

    kind: str
    at: tuple[int, ...] = ()
    rate: float | None = None
    attempts: tuple[int, ...] | None = (0,)
    seconds: float = 0.05

    def __post_init__(self) -> None:
        if self.kind not in _SITES:
            raise ValueError(f"unknown fault kind {self.kind!r}; known: {sorted(_SITES)}")
        if self.rate is not None and not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")

    @property
    def site(self) -> str:
        return _SITES[self.kind]

    def triggers(self, seed: int, index: int, attempt: int) -> bool:
        if self.attempts is not None and attempt not in self.attempts:
            return False
        if self.rate is not None:
            return random.Random(f"{seed}:{self.kind}:{index}").random() < self.rate
        if self.at:
            return index in self.at
        return True


class FaultPlan:
    """A seeded, deterministic set of :class:`FaultSpec` injections.

    Sites visited without an explicit index (the store-write site) use a
    per-site visit counter, so "the third write" is addressable with
    ``at=2``.  Counters live in the process that calls :meth:`fire`;
    the driver makes all decisions for forked workers (``parallel_map``
    asks the plan in the parent and ships the verdict with the item),
    so fork copies never desynchronize the plan.
    """

    def __init__(self, specs: Sequence[FaultSpec], seed: int = 0):
        self.specs = list(specs)
        self.seed = seed
        self._visits: dict[str, int] = {}

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "FaultPlan":
        """Parse ``"kind:key=val,key=val;kind:..."`` (the CLI syntax).

        Keys: ``at`` (``+``-separated 0-based indices), ``rate``
        (float in [0, 1]), ``attempts`` (``+``-separated attempt
        numbers, or ``all``), ``seconds`` (slow-chunk sleep).

        >>> plan = FaultPlan.parse("worker-crash:at=0;cell-error:rate=0.5", seed=7)
        >>> [spec.kind for spec in plan.specs]
        ['worker-crash', 'cell-error']
        """
        specs = []
        for chunk in text.split(";"):
            chunk = chunk.strip()
            if not chunk:
                continue
            kind, _, params = chunk.partition(":")
            kwargs: dict = {}
            for pair in params.split(","):
                pair = pair.strip()
                if not pair:
                    continue
                name, _, value = pair.partition("=")
                name, value = name.strip(), value.strip()
                if name == "at":
                    kwargs["at"] = tuple(int(token) for token in value.split("+"))
                elif name == "rate":
                    kwargs["rate"] = float(value)
                elif name == "attempts":
                    kwargs["attempts"] = (
                        None if value == "all" else tuple(int(t) for t in value.split("+"))
                    )
                elif name == "seconds":
                    kwargs["seconds"] = float(value)
                else:
                    raise ValueError(f"unknown fault parameter {name!r} in {chunk!r}")
            specs.append(FaultSpec(kind=kind.strip(), **kwargs))
        if not specs:
            raise ValueError(f"empty fault plan: {text!r}")
        return cls(specs, seed=seed)

    def fire(self, site: str, index: int | None = None, attempt: int = 0) -> FaultSpec | None:
        """The first spec triggering on this visit of ``site``, or ``None``."""
        if index is None:
            index = self._visits.get(site, 0)
            self._visits[site] = index + 1
        for spec in self.specs:
            if spec.site == site and spec.triggers(self.seed, index, attempt):
                return spec
        return None

    @contextlib.contextmanager
    def installed(self) -> Iterator["FaultPlan"]:
        """Install as the process-wide active plan (inherited by forks)."""
        global _ACTIVE
        previous = _ACTIVE
        _ACTIVE = self
        try:
            yield self
        finally:
            _ACTIVE = previous

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"FaultPlan({[spec.kind for spec in self.specs]}, seed={self.seed})"


_ACTIVE: FaultPlan | None = None


def active_plan() -> FaultPlan | None:
    """The currently installed plan, if any."""
    return _ACTIVE


def fire(site: str, index: int | None = None, attempt: int = 0) -> FaultSpec | None:
    """Site hook: ask the active plan (no-op when none is installed)."""
    plan = _ACTIVE
    if plan is None:
        return None
    spec = plan.fire(site, index, attempt)
    if spec is not None:
        telemetry = obs.active()
        if telemetry is not None:
            telemetry.count(
                "repro_faults_fired_total",
                help="injected faults that triggered, by kind",
                kind=spec.kind,
            )
            telemetry.point("fault_fired", kind=spec.kind, site=site, attempt=attempt)
    return spec
