"""Fault-tolerance runtime: deadlines, journals, fault injection.

The experiment stack above this package (``repro.experiments``,
``repro.core.engine.sweep``, ``repro.traffic``) assumes long runs fail:
a worker fork dies, a cell raises, the process is killed mid-grid, a
write is torn by a crash.  This package is the one place that knows how
to survive each of those:

* :mod:`~repro.runtime.deadline` — :class:`Deadline` / :class:`Budget`
  objects threaded through ``run_grid``, ``sweep_resilience`` and
  ``TrafficEngine.load_sweep`` so long sweeps stop cleanly at a limit
  and emit partial results flagged ``exhaustive=False``;
* :mod:`~repro.runtime.journal` — :func:`atomic_write_text` (temp file
  + rename, so result stores are never torn) and :class:`CellJournal`
  (append-only JSONL of completed grid cells, the substrate of
  ``run_grid(..., resume=path)``);
* :mod:`~repro.runtime.faults` — deterministic, seeded
  :class:`FaultPlan` injection of worker crashes, per-cell exceptions,
  slow chunks, and torn writes, so the test suite (and the CI chaos
  job) can prove every recovery path actually recovers.

Nothing in here imports from the experiment stack — the runtime is the
bottom layer.
"""

from .deadline import Budget, Deadline
from .faults import (
    FaultPlan,
    FaultSpec,
    GridKill,
    InjectedFault,
    TornWrite,
    active_plan,
    fire,
)
from .journal import CellJournal, atomic_write_text

__all__ = [
    "Budget",
    "CellJournal",
    "Deadline",
    "FaultPlan",
    "FaultSpec",
    "GridKill",
    "InjectedFault",
    "TornWrite",
    "active_plan",
    "atomic_write_text",
    "fire",
]
