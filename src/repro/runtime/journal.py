"""Crash-safe persistence: atomic writes and an append-only cell journal.

Two primitives with one goal — a killed run never loses or corrupts
what it already finished:

* :func:`atomic_write_text` replaces a file via same-directory temp
  file + ``os.replace``.  A crash mid-write leaves the old contents
  untouched; readers never observe a half-written document.  The
  ``ResultStore`` JSON and CSV exports go through this.
* :class:`CellJournal` is an append-only JSONL log of completed grid
  cells, written next to the result store.  ``run_grid`` appends one
  line per finished cell (flush + fsync, so a kill loses at most the
  in-flight cell) and ``run_grid(..., resume=path)`` replays it to skip
  cells already done.  A torn final line (the appending process died
  mid-line) is detected on load and truncated away.

Payloads are plain JSON values; the journal knows nothing about
``ExperimentRecord`` — the experiment layer serializes before
appending, keeping the runtime the bottom layer.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any

from repro import obs

from .faults import TornWrite, fire


def atomic_write_text(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + rename).

    The temp file lives in the target directory so ``os.replace`` is a
    same-filesystem atomic rename.  Data is flushed and fsynced before
    the rename, so after a crash the path holds either the complete old
    contents or the complete new contents — never a torn mix.

    Instrumented with the ``torn-write`` fault: an active spec makes
    this write half the bytes to the temp file and die (raising
    :class:`TornWrite`), simulating a crash mid-write; the target file
    is never touched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = path.parent / f".{path.name}.tmp.{os.getpid()}"
    try:
        spec = fire("store-write")
        with open(tmp, "w", encoding="utf-8") as handle:
            if spec is not None and spec.kind == "torn-write":
                handle.write(text[: max(1, len(text) // 2)])
                handle.flush()
                raise TornWrite(f"injected torn write for {path}")
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
    finally:
        try:
            tmp.unlink()
        except FileNotFoundError:
            pass


class CellJournal:
    """Append-only JSONL journal of completed work keyed by string.

    Each line is ``{"key": <str>, "payload": <json>, "ts": <unix>}``.
    Appends are flushed and fsynced so a kill loses at most the line
    being written; loading tolerates exactly that torn tail by
    truncating the file at the last complete, parseable line.

    ``ts`` is the wall-clock time the line was appended.  It lives
    beside the payload, never inside it, so replayed payloads stay
    byte-identical to what the original writer produced; its only job
    is :meth:`staleness_seconds` — letting a resumed run report how old
    the journal it is trusting actually is.  Lines without ``ts``
    (journals written before the field existed) still load.
    """

    def __init__(self, path: str | Path):
        self.path = Path(path)
        self._entries: dict[str, Any] = {}
        self._last_ts: float | None = None
        self._load()

    def _load(self) -> None:
        if not self.path.exists():
            return
        raw = self.path.read_text(encoding="utf-8")
        valid_bytes = 0
        for line in raw.splitlines(keepends=True):
            if not line.endswith("\n"):
                break  # torn tail: the writer died mid-line
            try:
                entry = json.loads(line)
                key = entry["key"]
                payload = entry["payload"]
            except (json.JSONDecodeError, KeyError, TypeError):
                break
            self._entries[key] = payload
            ts = entry.get("ts") if isinstance(entry, dict) else None
            if isinstance(ts, (int, float)):
                self._last_ts = ts if self._last_ts is None else max(self._last_ts, ts)
            valid_bytes += len(line.encode("utf-8"))
        if valid_bytes != len(raw.encode("utf-8")):
            with open(self.path, "r+b") as handle:
                handle.truncate(valid_bytes)
            telemetry = obs.active()
            if telemetry is not None:
                telemetry.count(
                    "repro_journal_truncations_total",
                    help="torn journal tails truncated on load",
                )
                telemetry.point("journal_truncated", path=str(self.path))

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def payload(self, key: str) -> Any:
        """The journaled payload for ``key`` (KeyError if absent)."""
        return self._entries[key]

    @property
    def last_ts(self) -> float | None:
        """Wall-clock time of the newest entry, or ``None`` (empty / pre-ts)."""
        return self._last_ts

    def staleness_seconds(self, now: float | None = None) -> float | None:
        """Age of the newest journal entry, or ``None`` if unknowable."""
        if self._last_ts is None:
            return None
        return max(0.0, (time.time() if now is None else now) - self._last_ts)

    def append(self, key: str, payload: Any) -> None:
        """Durably record ``key`` as done (overwrites a replayed key).

        Keys are NOT sorted on purpose: replayed payloads must preserve
        the writer's dict ordering bit for bit, so a resumed run can
        reproduce the uninterrupted run's artifacts byte-identically.
        The wall-clock ``ts`` rides outside the payload for the same
        reason — replay reads payloads only.
        """
        ts = time.time()
        line = json.dumps({"key": key, "payload": payload, "ts": ts}) + "\n"
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())
        self._entries[key] = payload
        self._last_ts = ts if self._last_ts is None else max(self._last_ts, ts)
        telemetry = obs.active()
        if telemetry is not None:
            telemetry.count(
                "repro_journal_appends_total", help="cell journal lines appended"
            )
            telemetry.point("journal_append", key=key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CellJournal({str(self.path)!r}, entries={len(self)})"
