"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``classify`` — §VIII classification of a graph (built-in family or
  edge-list file);
* ``route`` — route one packet under a failure set and print the walk;
* ``attack`` — run the constructive adversaries (Thm 1 / Thm 6 / Thm 7);
* ``tour`` — tour a graph with the right-hand rule or Hamiltonian cycles;
* ``zoo`` — regenerate the synthetic Topology Zoo and print the Fig. 7
  table for a slice of it;
* ``traffic`` — route a whole traffic matrix under sampled failure sets
  and print congestion curves (and, optionally, a greedy worst-case
  load attack);
* ``experiments`` — the unified grid runner: topologies × schemes ×
  failure models, resolved by registry name, emitting typed
  ``ExperimentRecord`` rows (JSON/CSV); ``--trace`` / bare ``--metrics``
  / ``--metrics-out`` turn on the telemetry layer and ``--progress``
  prints a per-cell heartbeat;
* ``stats`` — render a telemetry artifact (span trace JSONL or metrics
  snapshot JSON) as a human-readable hotspot report.

Schemes and topologies are resolved through
:mod:`repro.experiments.registry` — the CLI holds no private lists.
"""

from __future__ import annotations

import argparse
import contextlib
import sys

import networkx as nx

from .analysis import fig7_table, run_case_study
from .core import Network, route as simulate_route, tour as simulate_tour
from .core.adversary import attack_k44, attack_k7, attack_r_tolerance
from .core.classification import classify
from .experiments import (
    known_family,
    resolve_topology,
    scheme,
    scheme_names,
    topology_names,
)
from .graphs import generate_zoo
from .graphs.edges import edges


def _load_graph(spec: str) -> nx.Graph:
    if known_family(spec):
        # errors from inside a registered builder (bad zoo family, bad
        # size) propagate with their context instead of being mistaken
        # for a missing edge-list file
        return resolve_topology(spec)
    graph = nx.Graph()
    with open(spec) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            u, v = line.split()[:2]
            graph.add_edge(_maybe_int(u), _maybe_int(v))
    return graph


def _maybe_int(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def _parse_failures(tokens: list[str]):
    pairs = []
    for token in tokens:
        u, v = token.split("-")
        pairs.append((_maybe_int(u), _maybe_int(v)))
    return edges(pairs)


def _cmd_classify(args) -> int:
    graph = _load_graph(args.graph)
    result = classify(graph, name=args.graph, minor_budget=args.budget)
    print(f"{result.name}: n={result.n} m={result.m} ({result.planarity})")
    print(f"  touring:            {result.touring.value}")
    print(f"  destination-based:  {result.destination.value}")
    print(f"  source-destination: {result.source_destination.value}")
    print(f"  good destinations:  {result.good_destination_fraction:.0%}")
    return 0


def _cmd_route(args) -> int:
    graph = _load_graph(args.graph)
    source = _maybe_int(args.source)
    destination = _maybe_int(args.destination)
    failures = _parse_failures(args.fail)
    # preference order: exact small-graph tables, then tours, then the
    # distance-2 fallback — all resolved from the scheme registry
    for name in ("k5-source", "k33-source", None):
        if name is None:
            tour_router = scheme("tour").instantiate()
            if tour_router.supports(graph, destination):
                pattern = tour_router.build(graph, destination)
                chosen = tour_router.name
                break
            fallback = scheme("distance2").instantiate()
            pattern = fallback.build(graph, source, destination)
            chosen = fallback.name
            break
        algorithm = scheme(name).instantiate()
        try:
            pattern = algorithm.build(graph, source, destination)
            chosen = algorithm.name
            break
        except ValueError:
            continue
    result = simulate_route(Network(graph), pattern, source, destination, failures)
    print(f"algorithm: {chosen}")
    print(f"outcome:   {result.outcome.value}")
    print(f"walk:      {' -> '.join(map(str, result.path))}")
    return 0 if result.delivered else 1


def _cmd_attack(args) -> int:
    graph = _load_graph(args.graph)
    nodes = sorted(graph.nodes, key=repr)
    source, destination = nodes[0], nodes[-1]
    algorithm = (
        scheme("distance2").instantiate()
        if args.pattern == "distance2"
        else scheme("random-sd").instantiate(seed=args.seed)
    )
    try:
        if args.kind == "rtolerance":
            result = attack_r_tolerance(graph, algorithm, source, destination, r=args.r)
        elif args.kind == "k7":
            result = attack_k7(graph, algorithm, source, destination)
        else:
            result = attack_k44(graph, algorithm, source, destination)
    except ValueError as error:
        print(f"cannot attack this instance: {error}", file=sys.stderr)
        return 2
    if result is None:
        print("no witness found")
        return 1
    print(f"witness: |F| = {len(result.failures)} ({result.method})")
    for link in sorted(result.failures, key=repr):
        print(f"  fail {link[0]}-{link[1]}")
    return 0


def _cmd_tour(args) -> int:
    graph = _load_graph(args.graph)
    failures = _parse_failures(args.fail)
    try:
        router = scheme("right-hand").instantiate()
        pattern = router.build(graph)
    except Exception:
        router = scheme("hamiltonian").instantiate()
        pattern = router.build(graph)
    name = router.name
    start = sorted(graph.nodes, key=repr)[0]
    result = simulate_tour(Network(graph), pattern, start, failures)
    print(f"algorithm: {name}")
    print(f"toured forever: {sorted(result.recurrent, key=repr)}")
    return 0


def _cmd_zoo(args) -> int:
    suite = generate_zoo(seed=args.seed)[:: args.stride]
    result = run_case_study(suite=suite, minor_budget=args.budget)
    print(fig7_table(result))
    return 0


def _build_matrix(graph, args):
    # same dispatch (and same default all-to-one sink) as run_grid, so a
    # workload name labels the same matrix on every surface
    from .traffic.matrices import build_named_matrix

    destination = _maybe_int(args.destination) if args.destination else None
    return build_named_matrix(graph, args.matrix, seed=args.seed, destination=destination)


def _cmd_traffic(args) -> int:
    from . import traffic

    graph = _load_graph(args.graph)
    try:
        demands, matrix_name = _build_matrix(graph, args)
    except ValueError as error:  # e.g. --destination not a node of the graph
        print(f"cannot build matrix: {error}", file=sys.stderr)
        return 2
    try:
        sizes = [int(token) for token in args.sizes.split(",")] if args.sizes else None
    except ValueError:
        print(
            f"invalid --sizes {args.sizes!r}: expected comma-separated integers",
            file=sys.stderr,
        )
        return 2
    if args.failure_model:
        from .failures import parse_failure_model, spec_grammar

        try:
            model = parse_failure_model(args.failure_model)
        except ValueError as error:
            print(f"invalid --failure-model: {error}", file=sys.stderr)
            print(f"spec grammar: {spec_grammar()}", file=sys.stderr)
            return 2
    else:
        model = None
    session = _build_session(args.backend)
    if session is None:
        return 2
    if args.algorithm == "all":
        try:
            # a --failure-model pins the grid explicitly; otherwise the
            # historical sizes/samples/seed sampler runs inside
            result = traffic.compare_congestion(
                graph,
                demands,
                sizes=sizes,
                samples=args.samples,
                seed=args.seed,
                graph_name=args.graph,
                matrix_name=matrix_name,
                session=session,
                failure_grid=model.grid(graph) if model is not None else None,
            )
        except ValueError as error:  # bad sizes/samples for this topology
            print(f"cannot sweep: {error}", file=sys.stderr)
            return 2
        curves = result.curves
        for name, reason in result.skipped:
            print(f"[skipped] {name}: {reason}", file=sys.stderr)
    else:
        algorithm = scheme(args.algorithm).instantiate()
        try:
            if model is not None:
                grid = model.grid(graph)
            else:
                grid = traffic.sample_failure_grid(
                    graph, sizes or traffic.default_sizes(graph), args.samples, args.seed
                )
        except ValueError as error:
            print(f"cannot sweep: {error}", file=sys.stderr)
            return 2
        curve, reason = traffic.preflight_congestion_curve(
            session.traffic_engine(graph, algorithm),
            algorithm,
            demands,
            grid,
            samples=getattr(model, "samples", args.samples),
            graph_name=args.graph,
            matrix_name=matrix_name,
        )
        if curve is None:
            print(f"{algorithm.name} cannot run on this topology: {reason}", file=sys.stderr)
            return 2
        curves = [curve]
    print(f"congestion sweep: {args.graph}, matrix {matrix_name}, {len(demands)} demands")
    print(traffic.congestion_table(curves))
    if args.attack:
        if args.algorithm != "all":
            algorithm = scheme(args.algorithm).instantiate()
        else:
            # attack the first competitor that actually ran on this
            # topology (preference order = the registry's
            # congestion-default line-up)
            from .experiments import list_schemes

            survivors = {curve.algorithm for curve in curves}
            algorithm = next(
                (
                    spec.instantiate()
                    for spec in list_schemes(tag="congestion-default")
                    if spec.factory.name in survivors  # name is a class attribute
                ),
                None,
            )
            if algorithm is None:
                print("no supported algorithm to attack", file=sys.stderr)
                return 1
        attack = traffic.greedy_congestion_attack(graph, algorithm, demands, args.attack)
        print(
            f"worst-case load attack on {algorithm.name}: |F| = {attack.size}, "
            f"max load {attack.baseline_max_load} -> {attack.max_load} "
            f"({attack.amplification:.2f}x)"
        )
        for link in sorted(attack.failures, key=repr):
            print(f"  fail {link[0]}-{link[1]}")
    return 0 if curves else 1


def _build_session(backend: str | None, processes: int = 1):
    """An :class:`ExperimentSession` for ``--backend`` (and ``--processes``
    where the command has one), or ``None`` after printing the gating
    error (numpy requested but not installed)."""
    from .experiments import ExperimentSession, default_session

    if (backend is None or backend == "engine") and processes <= 1:
        return default_session()
    try:
        return ExperimentSession(backend=backend or "engine", processes=max(processes, 1))
    except (RuntimeError, ValueError) as error:
        print(f"cannot use backend {backend!r}: {error}", file=sys.stderr)
        return None


def _split_names(raw: str) -> list[str]:
    """Split a comma-separated name list, not splitting inside parens.

    ``"ring(12),torus(3,5)"`` -> ``["ring(12)", "torus(3,5)"]``.
    """
    names: list[str] = []
    depth = 0
    current = ""
    for char in raw:
        if char == "," and depth == 0:
            if current.strip():
                names.append(current.strip())
            current = ""
            continue
        depth += char == "("
        depth -= char == ")"
        current += char
    if current.strip():
        names.append(current.strip())
    return names


def _print_progress(info: dict) -> None:
    total = info["total"] if info["total"] is not None else "?"
    eta = f", eta {info['eta']:.0f}s" if info["eta"] is not None else ""
    replayed = f", {info['replayed']} replayed" if info["replayed"] else ""
    print(
        f"[grid] {info['done']}/{total} cells, {info['errors']} errors{replayed}{eta}",
        file=sys.stderr,
    )


def _cmd_experiments(args) -> int:
    from .experiments import (
        FailureModel,
        ResultStore,
        list_schemes,
        list_topologies,
        records_round_trip,
        run_grid,
        write_records_csv,
    )

    if args.list:
        from .analysis import simple_table

        print("registered schemes:")
        print(
            simple_table(
                ["name", "arity", "theorem", "requires"],
                [[s.name, s.arity, s.theorem, s.requires] for s in list_schemes()],
            )
        )
        print("\nregistered topologies:")
        print(
            simple_table(
                ["name", "signature", "source", "description"],
                [[t.name, t.signature, t.source, t.description] for t in list_topologies()],
            )
        )
        return 0

    # bare --metrics is the telemetry-dump flag (const=True); with a
    # value it is still the metric-family list
    dump_metrics = args.metrics is True
    metrics_spec = (
        "resilience,congestion,stretch,table_space" if dump_metrics else args.metrics
    )
    if args.failure_model:
        from .failures import parse_failure_model, spec_grammar

        try:
            spec_model = parse_failure_model(args.failure_model)
        except ValueError as error:
            print(f"invalid --failure-model: {error}", file=sys.stderr)
            print(f"spec grammar: {spec_grammar()}", file=sys.stderr)
            return 2
    else:
        spec_model = None
    if args.quick:
        # CI smoke: a tiny fixed 2-topology x 3-scheme grid, every
        # metric, permutation matrix, seed 0 — only the failure model
        # is overridable (so CI can smoke the sampled estimator path)
        from .experiments import METRICS

        overridden = [
            flag
            for flag, given in (
                ("--topologies", args.topologies != "ring,fattree"),
                ("--schemes", args.schemes is not None),
                ("--sizes", args.sizes is not None),
                ("--samples", args.samples != 5),
                ("--metrics", metrics_spec != "resilience,congestion,stretch,table_space"),
                ("--matrix", args.matrix != "permutation"),
                ("--seed", args.seed != 0),
            )
            if given
        ]
        if overridden:
            print(
                f"[--quick] ignoring {', '.join(overridden)}: the smoke grid is fixed",
                file=sys.stderr,
            )
        topologies = ["ring", "grid"]
        schemes = ["arborescence", "distance2", "greedy"]
        model = spec_model or FailureModel(sizes=(0, 1), samples=2, seed=0)
        metrics = list(METRICS)
        matrix = "permutation"
        seed = 0
    else:
        topologies = _split_names(args.topologies)
        schemes = _split_names(args.schemes) if args.schemes else None
        try:
            sizes = (
                tuple(int(token) for token in args.sizes.split(",")) if args.sizes else None
            )
        except ValueError:
            print(f"invalid --sizes {args.sizes!r}", file=sys.stderr)
            return 2
        model = spec_model or FailureModel(sizes=sizes, samples=args.samples, seed=args.seed)
        metrics = [token for token in metrics_spec.split(",") if token]
        matrix = args.matrix
        seed = args.seed
    session = _build_session(args.backend, args.processes)
    if session is None:
        return 2
    store = ResultStore(args.out) if args.out else None
    from .runtime import CellJournal, Deadline, FaultPlan, GridKill

    deadline = Deadline(args.deadline) if args.deadline is not None else None
    resume = args.resume
    if resume:
        journal = CellJournal(resume)
        staleness = journal.staleness_seconds()
        if len(journal) and staleness is not None:
            print(
                f"resuming from {resume}: {len(journal)} journaled cells, "
                f"newest {staleness:.0f}s old",
                file=sys.stderr,
            )
        resume = journal
    if args.inject_faults:
        try:
            plan_context = FaultPlan.parse(args.inject_faults, seed=args.fault_seed).installed()
        except ValueError as error:
            print(f"invalid --inject-faults plan: {error}", file=sys.stderr)
            return 2
    else:
        plan_context = contextlib.nullcontext()
    from . import obs

    telemetry = None
    if args.trace or dump_metrics or args.metrics_out:
        telemetry = obs.Telemetry(trace_path=args.trace)
    install = obs.installed(telemetry) if telemetry is not None else contextlib.nullcontext()
    try:
        with install, plan_context:
            result = run_grid(
                topologies,
                schemes,
                failure_models=[model],
                metrics=metrics,
                matrix=matrix,
                matrix_seed=seed,
                session=session,
                store=store,
                deadline=deadline,
                resume=resume,
                progress=_print_progress if args.progress else None,
            )
    except (KeyError, ValueError) as error:
        print(f"cannot run grid: {error}", file=sys.stderr)
        return 2
    except GridKill as kill:
        print(f"grid killed by injected fault: {kill}", file=sys.stderr)
        if args.resume:
            print(
                f"journal kept at {args.resume}; rerun with --resume to continue",
                file=sys.stderr,
            )
        return 3
    finally:
        # flush the trace even when the grid dies (a torn tail is
        # tolerated by the reader, but dangling spans are closed here)
        if telemetry is not None:
            telemetry.close()
    print(
        f"experiment grid: {len(topologies)} topologies x "
        f"{'all' if schemes is None else len(schemes)} schemes, {model.label}"
    )
    print(result.table())
    for topology_name, scheme_name, reason in result.skipped:
        print(f"[skipped] {scheme_name} on {topology_name}: {reason}", file=sys.stderr)
    if result.resumed_cells:
        print(f"resumed {result.resumed_cells} cells from {args.resume}")
    errors = result.errors
    if errors:
        for record in errors:
            print(
                f"[error] {record.scheme} on {record.topology} "
                f"({record.failure_model}): {record.note}",
                file=sys.stderr,
            )
    if not result.exhaustive:
        print("deadline exhausted: partial grid (completed cells only)", file=sys.stderr)
    if not records_round_trip(result.records):
        print("records failed the JSON round-trip", file=sys.stderr)
        return 1
    print(f"{len(result.records)} records (JSON round-trip ok)")
    if store is not None:
        print(f"merged into {store.path}")
    if args.csv:
        rows = write_records_csv(result.records, args.csv)
        print(f"wrote {rows} CSV rows to {args.csv}")
    if args.trace:
        print(f"trace written to {args.trace} (render with: repro stats {args.trace})")
    if args.metrics_out:
        telemetry.registry.write_snapshot(args.metrics_out)
        print(f"metrics snapshot written to {args.metrics_out}")
    if dump_metrics:
        print(telemetry.registry.render_prometheus(), end="")
    return 0 if result.records else 1


def _cmd_serve(args) -> int:
    session = _build_session(args.backend, args.processes)
    if session is None:
        return 2
    from . import obs
    from .experiments import ResultStore
    from .serve import QueryService
    from .serve.server import serve

    store = ResultStore(args.store) if args.store else None
    service = QueryService(session=session, store=store)

    def ready(server) -> None:
        print(f"repro serve: listening on {args.host}:{server.bound_port}", flush=True)
        if server.bound_metrics_port is not None:
            print(
                f"repro serve: metrics on "
                f"http://{args.host}:{server.bound_metrics_port}/metrics",
                flush=True,
            )
        if store is not None:
            print(f"repro serve: answer cache at {store.path}", flush=True)

    # the same Telemetry install seam the experiments command uses: the
    # registry always exists (it feeds /metrics), the trace is opt-in
    telemetry = obs.Telemetry(trace_path=args.trace)
    try:
        with obs.installed(telemetry):
            return serve(
                service=service,
                host=args.host,
                port=args.port,
                metrics_port=args.metrics_port,
                ready=ready,
            )
    finally:
        telemetry.close()


def _json_failure_sets(tokens: list[str]) -> list:
    """``["0-1,1-2", "3-4"]`` -> protocol failure-set JSON (2 sets)."""
    from .serve.protocol import failure_set_to_json

    sets = []
    for token in tokens:
        sets.append(failure_set_to_json(_parse_failures(token.split(","))))
    return sets


def _cmd_query(args) -> int:
    import json as _json

    from .serve import QueryClient, RemoteError, ServeTimeout

    params: dict = {}
    budget = args.budget
    if args.op in ("verdict", "load"):
        if not args.topology or not args.scheme:
            print(f"{args.op} needs --topology and --scheme", file=sys.stderr)
            return 2
        params = {"topology": args.topology, "scheme": args.scheme}
        if args.failures:
            params["failure_sets"] = _json_failure_sets(args.failures)
            if args.destination is not None and args.op == "verdict":
                params["destination"] = _maybe_int(args.destination)
        elif args.failure_model:
            # the raw spec string travels; the service parses it with
            # the same grammar the CLI uses (one error surface)
            params["model"] = args.failure_model
        else:
            sizes = (
                [int(token) for token in args.sizes.split(",")] if args.sizes else None
            )
            params.update({"sizes": sizes, "samples": args.samples, "seed": args.seed})
        if args.op == "load":
            params.update({"matrix": args.matrix, "matrix_seed": args.seed})
    elif args.op == "grid":
        if not args.topology:
            print("grid needs --topology (comma-separated names)", file=sys.stderr)
            return 2
        sizes = [int(token) for token in args.sizes.split(",")] if args.sizes else None
        params = {
            "topologies": _split_names(args.topology),
            "schemes": _split_names(args.scheme) if args.scheme else None,
            "matrix": args.matrix,
            "matrix_seed": args.seed,
        }
        if args.failure_model:
            params["model"] = args.failure_model
        else:
            params.update({"sizes": sizes, "samples": args.samples, "seed": args.seed})
    client = QueryClient(
        host=args.host, port=args.port, timeout=args.timeout, retries=args.retries
    )
    try:
        reply = client.request(args.op, params, budget_seconds=budget)
    except RemoteError as error:
        print(f"service error: {error}", file=sys.stderr)
        return 1
    except (ServeTimeout, OSError) as error:
        print(f"cannot reach {args.host}:{args.port}: {error}", file=sys.stderr)
        return 3
    finally:
        client.close()
    if args.json:
        print(_json.dumps(reply, indent=2, sort_keys=True))
        return 0
    result = reply.get("result", {})
    flags = " [partial]" if reply.get("partial") else ""
    flags += " [cached]" if reply.get("cached") else ""
    if args.op == "ping":
        print(f"pong: uptime {result.get('uptime_seconds', 0):.1f}s")
    elif args.op in ("stats", "shutdown"):
        print(_json.dumps(result, indent=2, sort_keys=True))
    elif args.op == "verdict":
        verdict = result["verdict"]
        state = "resilient" if verdict["resilient"] else "NOT resilient"
        if verdict.get("sampled"):
            print(
                f"{args.scheme} on {args.topology}: {state} — "
                f"estimate {verdict['estimate']:.4f} "
                f"[{verdict['ci_low']:.4f}, {verdict['ci_high']:.4f}] 95% CI "
                f"({verdict['samples']}/{verdict['planned_samples']} samples, "
                f"exhaustive={verdict['exhaustive']}){flags}"
            )
        else:
            print(
                f"{args.scheme} on {args.topology}: {state} "
                f"({verdict['scenarios_checked']} scenarios, "
                f"exhaustive={verdict['exhaustive']}){flags}"
            )
        if verdict["counterexample"]:
            print(f"  counterexample: {verdict['counterexample']}")
    elif args.op == "load":
        record = result["record"]
        print(
            f"{args.scheme} on {args.topology} ({record['params']['matrix']}): "
            f"{record['metrics']['completed_sets']}/{record['metrics']['failure_sets']} "
            f"failure sets, worst max_load={record['metrics']['worst_max_load']}, "
            f"min delivered={record['metrics']['min_delivered_fraction']:.3f}{flags}"
        )
    elif args.op == "grid":
        from .experiments import ExperimentRecord, records_table

        records = [ExperimentRecord.from_dict(entry) for entry in result["records"]]
        print(records_table(records) + flags)
    return 0


def _cmd_stats(args) -> int:
    from . import obs

    try:
        if args.validate:
            events = obs.validate_trace(args.file)
            spans = sum(1 for event in events if event["event"] == "end")
            print(f"{args.file}: valid trace ({len(events)} events, {spans} spans)")
            return 0
        print(obs.render_report(args.file, top=args.top), end="")
    except obs.TraceError as error:
        print(f"invalid trace: {error}", file=sys.stderr)
        return 1
    except (OSError, ValueError) as error:
        print(f"cannot render {args.file}: {error}", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Static fast rerouting: the DSN'22 'Price of Locality' toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    families = ", ".join(topology_names())
    p = sub.add_parser("classify", help="classify a topology (§VIII)")
    p.add_argument("graph", help=f"family ({families}) or edge-list file")
    p.add_argument("--budget", type=int, default=20_000, help="minor-search budget")
    p.set_defaults(func=_cmd_classify)

    p = sub.add_parser("route", help="route one packet under failures")
    p.add_argument("graph")
    p.add_argument("source")
    p.add_argument("destination")
    p.add_argument("--fail", nargs="*", default=[], help="failed links, e.g. 0-1 2-3")
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser("attack", help="run a constructive adversary")
    p.add_argument("kind", choices=["rtolerance", "k7", "k44"])
    p.add_argument("graph")
    p.add_argument("--pattern", choices=["distance2", "random"], default="distance2")
    p.add_argument("--r", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser("tour", help="tour a graph without header information")
    p.add_argument("graph")
    p.add_argument("--fail", nargs="*", default=[])
    p.set_defaults(func=_cmd_tour)

    p = sub.add_parser("zoo", help="run the §VIII case study on the synthetic Zoo")
    p.add_argument("--stride", type=int, default=10, help="use every k-th topology")
    p.add_argument("--seed", type=int, default=2022)
    p.add_argument("--budget", type=int, default=2_000)
    p.set_defaults(func=_cmd_zoo)

    p = sub.add_parser("traffic", help="congestion sweep: route a traffic matrix under failures")
    p.add_argument("graph", help=f"family ({families}) or edge-list file")
    p.add_argument(
        "--matrix",
        choices=["permutation", "all-to-one", "all-to-all", "hotspot", "gravity"],
        default="permutation",
    )
    p.add_argument("--destination", default=None, help="sink for --matrix all-to-one")
    p.add_argument(
        "--algorithm",
        choices=["all", *scheme_names()],
        default="all",
        help="one registered scheme, or 'all' for the comparison harness",
    )
    p.add_argument("--sizes", default=None, help="failure-set sizes, e.g. 0,1,2,4")
    p.add_argument("--samples", type=int, default=10, help="failure sets per size")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--failure-model",
        default=None,
        metavar="SPEC",
        help="failure-model spec, e.g. 'iid:p=0.01,samples=500,seed=0' (families: random, exhaustive, iid, srlg, regional); overrides --sizes/--samples/--seed",
    )
    p.add_argument(
        "--backend",
        choices=["engine", "numpy"],
        default="engine",
        help="load router backend: the scalar engine, or the vectorized "
        "numpy mask walker (identical loads; needs numpy)",
    )
    p.add_argument(
        "--attack", type=int, default=0, metavar="K",
        help="also run a greedy worst-case load attack with up to K failures",
    )
    p.set_defaults(func=_cmd_traffic)

    p = sub.add_parser(
        "experiments",
        help="run a topologies x schemes x failure-models grid from the registries",
    )
    p.add_argument(
        "--topologies",
        default="ring,fattree",
        help="comma-separated registry names; size notation allowed, e.g. ring(12)",
    )
    p.add_argument(
        "--schemes",
        default=None,
        help="comma-separated scheme names (default: every registered scheme)",
    )
    p.add_argument(
        "--metrics",
        nargs="?",
        const=True,
        default="resilience,congestion,stretch,table_space",
        help="metric families to run (comma list); bare --metrics keeps the "
        "default families and additionally dumps the telemetry counters as "
        "Prometheus text after the run",
    )
    p.add_argument("--matrix", default="permutation")
    p.add_argument("--sizes", default=None, help="failure-set sizes, e.g. 0,1,2,4")
    p.add_argument("--samples", type=int, default=5, help="failure sets per size")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--failure-model",
        default=None,
        metavar="SPEC",
        help="failure-model spec, e.g. 'iid:p=0.01,samples=500,seed=0' "
        "(families: random, exhaustive, iid, srlg, regional); sampled "
        "models stream estimates with 95%% CI bounds; honored even "
        "under --quick",
    )
    p.add_argument(
        "--backend",
        choices=["engine", "naive", "numpy"],
        default="engine",
        help="session backend: fast scalar engine, naive reference walks, "
        "or the vectorized numpy mask walker (identical verdicts; "
        "numpy needs the optional dependency installed)",
    )
    p.add_argument(
        "--processes",
        type=int,
        default=1,
        metavar="N",
        help="fan grid cells out across N forked workers sharing the "
        "parent's warm engine state (records are stitched in grid "
        "order, identical to a serial run); fault injection forces "
        "serial execution",
    )
    p.add_argument("--out", default=None, help="merge records into this JSON result store")
    p.add_argument("--csv", default=None, help="also write the records as CSV")
    p.add_argument("--list", action="store_true", help="list registered schemes/topologies")
    p.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke: 2 topologies x 3 schemes, JSON round-trip validated",
    )
    p.add_argument(
        "--resume",
        default=None,
        metavar="JOURNAL",
        help="checkpoint/resume: journal each finished cell to this JSONL "
        "file and replay cells already journaled (a killed grid restarts "
        "where it left off)",
    )
    p.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop the grid cleanly after this many seconds; completed "
        "cells are kept and the partial grid is flagged non-exhaustive",
    )
    p.add_argument(
        "--inject-faults",
        default=None,
        metavar="PLAN",
        help="deterministic fault injection, e.g. "
        "'cell-error:at=1;worker-crash:at=0' — kinds: cell-error, "
        "grid-kill, worker-crash, slow-chunk, torn-write; selectors: "
        "at=i+j (0-based), rate=0..1, attempts=i+j|all, seconds=s",
    )
    p.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        metavar="N",
        help="seed for rate-based fault injection decisions",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write telemetry spans (append-only JSONL) to PATH; render "
        "with 'repro stats PATH'",
    )
    p.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="write a metrics snapshot (JSON) to PATH; render with "
        "'repro stats PATH'",
    )
    p.add_argument(
        "--progress",
        action="store_true",
        help="print a per-cell heartbeat (done/total, errors, ETA) to stderr",
    )
    p.set_defaults(func=_cmd_experiments)

    p = sub.add_parser(
        "serve",
        help="run the persistent resilience-query service (warm caches, "
        "batched sweeps, Lazy-Pirate request-reply)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7421, help="TCP port (0 = ephemeral)")
    p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve GET /metrics (Prometheus text) on this port (0 = ephemeral)",
    )
    p.add_argument(
        "--store",
        default=None,
        metavar="PATH",
        help="disk-backed ResultStore used as the memoized answer cache "
        "(pre-populate it with 'repro experiments --out PATH')",
    )
    p.add_argument(
        "--backend",
        choices=["engine", "naive", "numpy"],
        default="engine",
        help="session backend for the warm engine caches",
    )
    p.add_argument(
        "--processes",
        type=int,
        default=1,
        metavar="N",
        help="default fan-out for grid sweeps the service runs (grid "
        "requests inherit the session's processes)",
    )
    p.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write per-request telemetry spans (JSONL) to PATH",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "query",
        help="query a running 'repro serve' (reliable Lazy-Pirate client)",
    )
    p.add_argument(
        "op",
        choices=["ping", "stats", "verdict", "load", "grid", "shutdown"],
        help="operation to run against the service",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7421)
    p.add_argument("--timeout", type=float, default=10.0, help="per-attempt reply timeout")
    p.add_argument("--retries", type=int, default=3, help="reconnect-and-resend attempts")
    p.add_argument(
        "--budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request compute budget; a cut sweep returns a partial answer",
    )
    p.add_argument("--topology", default=None, help="registry name (comma list for grid)")
    p.add_argument("--scheme", default=None, help="scheme name (comma list for grid)")
    p.add_argument(
        "--failures",
        action="append",
        default=None,
        metavar="SET",
        help="explicit failure set 'u-v,x-y' (repeat for several sets)",
    )
    p.add_argument(
        "--destination", default=None, help="destination node for explicit verdicts"
    )
    p.add_argument("--sizes", default=None, help="failure-model sizes, e.g. 1,2")
    p.add_argument("--samples", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--failure-model",
        default=None,
        metavar="SPEC",
        help="failure-model spec, e.g. 'iid:p=0.01,samples=500,seed=0' (families: random, exhaustive, iid, srlg, regional); overrides --sizes/--samples/--seed",
    )
    p.add_argument("--matrix", default="permutation")
    p.add_argument("--json", action="store_true", help="print the raw reply envelope")
    p.set_defaults(func=_cmd_query)

    p = sub.add_parser(
        "stats",
        help="render a telemetry trace or metrics snapshot as a hotspot report",
    )
    p.add_argument(
        "file",
        help="trace JSONL (from experiments --trace) or metrics snapshot "
        "JSON (from experiments --metrics-out)",
    )
    p.add_argument("--top", type=int, default=20, help="span rows to show")
    p.add_argument(
        "--validate",
        action="store_true",
        help="only validate the trace against the event schema and exit",
    )
    p.set_defaults(func=_cmd_stats)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
