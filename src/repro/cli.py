"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``classify`` — §VIII classification of a graph (built-in family or
  edge-list file);
* ``route`` — route one packet under a failure set and print the walk;
* ``attack`` — run the constructive adversaries (Thm 1 / Thm 6 / Thm 7);
* ``tour`` — tour a graph with the right-hand rule or Hamiltonian cycles;
* ``zoo`` — regenerate the synthetic Topology Zoo and print the Fig. 7
  table for a slice of it;
* ``traffic`` — route a whole traffic matrix under sampled failure sets
  and print congestion curves (and, optionally, a greedy worst-case
  load attack).
"""

from __future__ import annotations

import argparse
import sys

import networkx as nx

from . import graphs as G
from .analysis import fig7_table, run_case_study
from .core import Network, route as simulate_route, tour as simulate_tour
from .core.adversary import attack_k44, attack_k7, attack_r_tolerance
from .core.algorithms import (
    ArborescenceRouting,
    Distance2Algorithm,
    Distance3BipartiteAlgorithm,
    GreedyLowestNeighbor,
    HamiltonianTouring,
    K5SourceRouting,
    K33SourceRouting,
    RandomCyclicPermutations,
    RightHandTouring,
    TourToDestination,
)
from .core.classification import classify
from .graphs.edges import edges

_FAMILIES = {
    "k5": lambda: G.complete_graph(5),
    "k7": lambda: G.complete_graph(7),
    "k33": lambda: G.complete_bipartite(3, 3),
    "k44": lambda: G.complete_bipartite(4, 4),
    "netrail": G.fig6_netrail,
    "petersen": G.petersen_graph,
    "wheel": lambda: G.wheel_graph(6),
    "grid": lambda: G.grid_graph(4, 4),
    "ring": lambda: G.cycle_graph(8),
    "fan": lambda: G.fan_graph(8),
    "fattree": lambda: G.fat_tree(4),
    "hypercube": lambda: G.hypercube(4),
    "torus": lambda: G.torus(4, 4),
}


def _load_graph(spec: str) -> nx.Graph:
    if spec in _FAMILIES:
        return _FAMILIES[spec]()
    graph = nx.Graph()
    with open(spec) as handle:
        for line in handle:
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            u, v = line.split()[:2]
            graph.add_edge(_maybe_int(u), _maybe_int(v))
    return graph


def _maybe_int(token: str):
    try:
        return int(token)
    except ValueError:
        return token


def _parse_failures(tokens: list[str]):
    pairs = []
    for token in tokens:
        u, v = token.split("-")
        pairs.append((_maybe_int(u), _maybe_int(v)))
    return edges(pairs)


def _cmd_classify(args) -> int:
    graph = _load_graph(args.graph)
    result = classify(graph, name=args.graph, minor_budget=args.budget)
    print(f"{result.name}: n={result.n} m={result.m} ({result.planarity})")
    print(f"  touring:            {result.touring.value}")
    print(f"  destination-based:  {result.destination.value}")
    print(f"  source-destination: {result.source_destination.value}")
    print(f"  good destinations:  {result.good_destination_fraction:.0%}")
    return 0


def _cmd_route(args) -> int:
    graph = _load_graph(args.graph)
    source = _maybe_int(args.source)
    destination = _maybe_int(args.destination)
    failures = _parse_failures(args.fail)
    for algorithm in (K5SourceRouting(), K33SourceRouting(), None):
        if algorithm is None:
            tour_router = TourToDestination()
            if tour_router.supports(graph, destination):
                pattern = tour_router.build(graph, destination)
                chosen = tour_router.name
                break
            pattern = Distance2Algorithm().build(graph, source, destination)
            chosen = Distance2Algorithm.name
            break
        try:
            pattern = algorithm.build(graph, source, destination)
            chosen = algorithm.name
            break
        except ValueError:
            continue
    result = simulate_route(Network(graph), pattern, source, destination, failures)
    print(f"algorithm: {chosen}")
    print(f"outcome:   {result.outcome.value}")
    print(f"walk:      {' -> '.join(map(str, result.path))}")
    return 0 if result.delivered else 1


def _cmd_attack(args) -> int:
    graph = _load_graph(args.graph)
    nodes = sorted(graph.nodes, key=repr)
    source, destination = nodes[0], nodes[-1]
    algorithm = (
        Distance2Algorithm() if args.pattern == "distance2" else RandomCyclicPermutations(seed=args.seed)
    )
    try:
        if args.kind == "rtolerance":
            result = attack_r_tolerance(graph, algorithm, source, destination, r=args.r)
        elif args.kind == "k7":
            result = attack_k7(graph, algorithm, source, destination)
        else:
            result = attack_k44(graph, algorithm, source, destination)
    except ValueError as error:
        print(f"cannot attack this instance: {error}", file=sys.stderr)
        return 2
    if result is None:
        print("no witness found")
        return 1
    print(f"witness: |F| = {len(result.failures)} ({result.method})")
    for link in sorted(result.failures, key=repr):
        print(f"  fail {link[0]}-{link[1]}")
    return 0


def _cmd_tour(args) -> int:
    graph = _load_graph(args.graph)
    failures = _parse_failures(args.fail)
    try:
        pattern = RightHandTouring().build(graph)
        name = RightHandTouring.name
    except Exception:
        pattern = HamiltonianTouring().build(graph)
        name = HamiltonianTouring.name
    start = sorted(graph.nodes, key=repr)[0]
    result = simulate_tour(Network(graph), pattern, start, failures)
    print(f"algorithm: {name}")
    print(f"toured forever: {sorted(result.recurrent, key=repr)}")
    return 0


def _cmd_zoo(args) -> int:
    suite = G.generate_zoo(seed=args.seed)[:: args.stride]
    result = run_case_study(suite=suite, minor_budget=args.budget)
    print(fig7_table(result))
    return 0


_TRAFFIC_ALGORITHMS = {
    "arborescence": ArborescenceRouting,
    "distance2": Distance2Algorithm,
    "distance3": Distance3BipartiteAlgorithm,
    "tour": TourToDestination,
    "greedy": GreedyLowestNeighbor,
}


def _build_matrix(graph, args):
    from . import traffic

    nodes = sorted(graph.nodes, key=repr)
    if args.matrix == "all-to-one":
        destination = _maybe_int(args.destination) if args.destination else nodes[-1]
        return traffic.all_to_one(graph, destination), f"all-to-one({destination})"
    if args.matrix == "all-to-all":
        return traffic.all_to_all(graph), "all-to-all"
    if args.matrix == "hotspot":
        return traffic.hotspot(graph, seed=args.seed), "hotspot"
    if args.matrix == "gravity":
        return traffic.gravity(graph, seed=args.seed), "gravity"
    return traffic.permutation(graph, seed=args.seed), "permutation"


def _cmd_traffic(args) -> int:
    from . import traffic

    graph = _load_graph(args.graph)
    try:
        demands, matrix_name = _build_matrix(graph, args)
    except ValueError as error:  # e.g. --destination not a node of the graph
        print(f"cannot build matrix: {error}", file=sys.stderr)
        return 2
    try:
        sizes = [int(token) for token in args.sizes.split(",")] if args.sizes else None
    except ValueError:
        print(
            f"invalid --sizes {args.sizes!r}: expected comma-separated integers",
            file=sys.stderr,
        )
        return 2
    if args.algorithm == "all":
        try:
            result = traffic.compare_congestion(
                graph,
                demands,
                sizes=sizes,
                samples=args.samples,
                seed=args.seed,
                graph_name=args.graph,
                matrix_name=matrix_name,
            )
        except ValueError as error:  # bad sizes/samples for this topology
            print(f"cannot sweep: {error}", file=sys.stderr)
            return 2
        curves = result.curves
        for name, reason in result.skipped:
            print(f"[skipped] {name}: {reason}", file=sys.stderr)
    else:
        algorithm = _TRAFFIC_ALGORITHMS[args.algorithm]()
        try:
            grid = traffic.sample_failure_grid(
                graph, sizes or traffic.default_sizes(graph), args.samples, args.seed
            )
        except ValueError as error:
            print(f"cannot sweep: {error}", file=sys.stderr)
            return 2
        engine = traffic.TrafficEngine(graph, algorithm)
        try:
            # pre-flight only: build every pattern once; a failure here is
            # an expected topology precondition, anything later is a bug
            engine.load(demands)
        except Exception as error:  # noqa: BLE001 - precondition failures vary by algorithm
            print(f"{algorithm.name} cannot run on this topology: {error}", file=sys.stderr)
            return 2
        curves = [
            traffic.congestion_vs_failures(
                graph,
                algorithm,
                demands,
                samples=args.samples,
                graph_name=args.graph,
                matrix_name=matrix_name,
                failure_grid=grid,
                engine=engine,
            )
        ]
    print(f"congestion sweep: {args.graph}, matrix {matrix_name}, {len(demands)} demands")
    print(traffic.congestion_table(curves))
    if args.attack:
        if args.algorithm != "all":
            algorithm = _TRAFFIC_ALGORITHMS[args.algorithm]()
        else:
            # attack the first competitor that actually ran on this
            # topology (preference order = _TRAFFIC_ALGORITHMS order)
            survivors = {curve.algorithm for curve in curves}
            algorithm = next(
                (
                    factory()
                    for factory in _TRAFFIC_ALGORITHMS.values()
                    if factory.name in survivors  # name is a class attribute
                ),
                None,
            )
            if algorithm is None:
                print("no supported algorithm to attack", file=sys.stderr)
                return 1
        attack = traffic.greedy_congestion_attack(graph, algorithm, demands, args.attack)
        print(
            f"worst-case load attack on {algorithm.name}: |F| = {attack.size}, "
            f"max load {attack.baseline_max_load} -> {attack.max_load} "
            f"({attack.amplification:.2f}x)"
        )
        for link in sorted(attack.failures, key=repr):
            print(f"  fail {link[0]}-{link[1]}")
    return 0 if curves else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Static fast rerouting: the DSN'22 'Price of Locality' toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("classify", help="classify a topology (§VIII)")
    p.add_argument("graph", help=f"family ({', '.join(_FAMILIES)}) or edge-list file")
    p.add_argument("--budget", type=int, default=20_000, help="minor-search budget")
    p.set_defaults(func=_cmd_classify)

    p = sub.add_parser("route", help="route one packet under failures")
    p.add_argument("graph")
    p.add_argument("source")
    p.add_argument("destination")
    p.add_argument("--fail", nargs="*", default=[], help="failed links, e.g. 0-1 2-3")
    p.set_defaults(func=_cmd_route)

    p = sub.add_parser("attack", help="run a constructive adversary")
    p.add_argument("kind", choices=["rtolerance", "k7", "k44"])
    p.add_argument("graph")
    p.add_argument("--pattern", choices=["distance2", "random"], default="distance2")
    p.add_argument("--r", type=int, default=1)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser("tour", help="tour a graph without header information")
    p.add_argument("graph")
    p.add_argument("--fail", nargs="*", default=[])
    p.set_defaults(func=_cmd_tour)

    p = sub.add_parser("zoo", help="run the §VIII case study on the synthetic Zoo")
    p.add_argument("--stride", type=int, default=10, help="use every k-th topology")
    p.add_argument("--seed", type=int, default=2022)
    p.add_argument("--budget", type=int, default=2_000)
    p.set_defaults(func=_cmd_zoo)

    p = sub.add_parser("traffic", help="congestion sweep: route a traffic matrix under failures")
    p.add_argument("graph", help=f"family ({', '.join(_FAMILIES)}) or edge-list file")
    p.add_argument(
        "--matrix",
        choices=["permutation", "all-to-one", "all-to-all", "hotspot", "gravity"],
        default="permutation",
    )
    p.add_argument("--destination", default=None, help="sink for --matrix all-to-one")
    p.add_argument(
        "--algorithm",
        choices=["all", *_TRAFFIC_ALGORITHMS],
        default="all",
        help="one algorithm, or 'all' for the comparison harness",
    )
    p.add_argument("--sizes", default=None, help="failure-set sizes, e.g. 0,1,2,4")
    p.add_argument("--samples", type=int, default=10, help="failure sets per size")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--attack", type=int, default=0, metavar="K",
        help="also run a greedy worst-case load attack with up to K failures",
    )
    p.set_defaults(func=_cmd_traffic)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
